(* Machine models for the simulated-time runtime.

   The container this reproduction runs in has a single physical core, so
   thread-scaling results cannot be wall-clock measurements (DESIGN.md,
   substitution table).  Instead, lowered programs are costed by an
   analytic model parameterized by the machine descriptions below.  The
   parameters are shared by every benchmark and never tuned per-figure;
   the relative effects the paper attributes performance to are all
   represented:

   - thread-team startup cost (why OpenMP region fusion/hoisting help),
   - nested-team startup and oversubscription (why serializing inner
     parallel loops beats nested parallelism),
   - finite memory bandwidth shared by all cores (why scaling flattens,
     and why GEMM-style kernels win on HBM machines),
   - per-worksharing-loop scheduling and barrier costs,
   - false-sharing penalty for fine-grained nested parallel writes. *)

type t =
  { name : string
  ; cores : int
  ; flop_ns : float (* ns per scalar arithmetic op, single thread *)
  ; mem_ns_per_byte : float (* ns per byte when out of cache, single stream *)
  ; cache_ns_per_byte : float (* ns per byte for cache-resident traffic:
                                  shared-memory tiles and the thread-private
                                  spill slabs barrier fission creates *)
  ; bandwidth_gbs : float (* total sustained memory bandwidth, GB/s *)
  ; cache_bytes : int (* last-level cache per socket *)
  ; spawn_ns : float (* omp.parallel team startup *)
  ; nested_spawn_ns : float (* nested team startup (hotter path, TLS…) *)
  ; barrier_ns : float (* per-thread cost of one omp.barrier *)
  ; chunk_ns : float (* per-wsloop scheduling overhead *)
  ; alloc_ns : float (* heap allocation *)
  ; false_sharing_mult : float (* byte-cost multiplier for nested inner
                                   parallel writes on adjacent addresses *)
  ; simd_width : int (* lanes a hand-vectorized inner kernel (GEMM) uses *)
  ; short_vector_eff : float
    (* arithmetic efficiency of short-vector / strided kernels (direct
       convolution inner loops) relative to streaming GEMM kernels.  High
       on AVX2-era x86 where oneDNN is battle-tuned; low on A64FX SVE,
       where the Fujitsu port leaves much of the peak unused — the
       mechanism behind the paper's Fig. 15 gap. *)
  }

(* AWS c6i-like dual-socket Xeon (the paper's Rodinia testbed): many
   cores, deep caches, commodity DRAM bandwidth. *)
let commodity =
  { name = "commodity-x86"
  ; cores = 32
  ; flop_ns = 0.35
  ; mem_ns_per_byte = 0.12
  ; cache_ns_per_byte = 0.02
  ; bandwidth_gbs = 140.0
  ; cache_bytes = 54 * 1024 * 1024
  ; spawn_ns = 3_500.0
  ; nested_spawn_ns = 600.0
  ; barrier_ns = 450.0
  ; chunk_ns = 220.0
  ; alloc_ns = 400.0
  ; false_sharing_mult = 1.05
  ; simd_width = 8
  ; short_vector_eff = 0.7
  }

(* Fugaku A64FX-like: many slower cores, HBM2 bandwidth, small caches —
   the machine where GPU-style, bandwidth-hungry kernels shine. *)
let a64fx =
  { name = "a64fx"
  ; cores = 48
  ; flop_ns = 0.55
  ; mem_ns_per_byte = 0.09
  ; cache_ns_per_byte = 0.025
  ; bandwidth_gbs = 1024.0
  ; cache_bytes = 32 * 1024 * 1024
  ; spawn_ns = 5_000.0
  ; nested_spawn_ns = 900.0
  ; barrier_ns = 600.0
  ; chunk_ns = 300.0
  ; alloc_ns = 500.0
  ; false_sharing_mult = 1.05
  ; simd_width = 16
  ; short_vector_eff = 0.28
  }

let by_name = function
  | "commodity" | "commodity-x86" -> commodity
  | "a64fx" | "fugaku" -> a64fx
  | s -> invalid_arg ("unknown machine model: " ^ s)
