(* Static cost evaluation: a partial evaluator that walks the IR with the
   integer arguments of a run and produces a simulated execution time on a
   given machine model with a given thread count.

   Work is tracked as a triple:
   - [comp]   distributable compute seconds (arithmetic, scalar ops)
   - [bytes]  memory traffic (shared-bandwidth resource)
   - [fixed]  already-realized wall-clock seconds (overheads, nested
              regions that have been assigned their own thread budget)

   A worksharing loop realizes its body's work:

       time = max( trips * (comp + fixed) / min(T, trips),
                   trips * bytes / bandwidth )            + chunk overhead

   i.e. compute scales with threads until memory bandwidth saturates —
   the mechanism behind every scaling curve in the paper's evaluation.

   Scalar integer values are partially evaluated so loop trip counts
   derived from the run's arguments are exact; data-dependent counts fall
   back to annotations ([trip] attribute) or defaults. *)

open Ir

type sval =
  | Ki of int
  | Kf of float
  | Unk

type work =
  { comp : float (* seconds, single-thread *)
  ; bytes : float (* global-memory traffic (shared-bandwidth resource) *)
  ; lbytes : float (* cache-resident traffic: Shared/Local memrefs *)
  ; fixed : float (* seconds that no longer scale with threads *)
  }

let zero = { comp = 0.0; bytes = 0.0; lbytes = 0.0; fixed = 0.0 }
let ( ++ ) a b =
  { comp = a.comp +. b.comp
  ; bytes = a.bytes +. b.bytes
  ; lbytes = a.lbytes +. b.lbytes
  ; fixed = a.fixed +. b.fixed
  }

let scale k a =
  { comp = k *. a.comp
  ; bytes = k *. a.bytes
  ; lbytes = k *. a.lbytes
  ; fixed = k *. a.fixed
  }

type team_ctx =
  { tsize : int
  ; tnested : bool
  }

type ctx =
  { machine : Machine.t
  ; threads : int (* threads requested for the run *)
  ; modul : Op.op
  ; env : sval Value.Tbl.t
  ; iv_trips : int Value.Tbl.t (* known trip count of the loop an iv drives *)
  ; mutable unknown_trips : int (* how often a default trip was used *)
  ; default_trip : int
  }

let ns = 1e-9

let lookup ctx (v : Value.t) : sval =
  match Value.Tbl.find_opt ctx.env v with Some s -> s | None -> Unk

let bind ctx v s = Value.Tbl.replace ctx.env v s

let as_int = function Ki n -> Some n | Kf _ | Unk -> None

(* Probability that a condition holds, for costing an if-branch.  Exact
   when the condition folded to a constant; the tid==0 / iv==const guard
   costs 1/trip; bounded comparisons use a uniform-iv estimate; everything
   else is 0.5. *)
let cond_fraction ctx (cond : Value.t) : float =
  match lookup ctx cond with
  | Ki 0 -> 0.0
  | Ki _ -> 1.0
  | Kf _ | Unk -> begin
    (* look through the defining cmp *)
    let def =
      let found = ref None in
      Op.iter
        (fun o ->
          if Array.exists (Value.equal cond) o.Op.results then found := Some o)
        ctx.modul;
      !found
    in
    match def with
    | Some { Op.kind = Op.Cmp pred; operands; _ } -> begin
      let trip_of v = Value.Tbl.find_opt ctx.iv_trips v in
      let known v = as_int (lookup ctx v) in
      match pred, trip_of operands.(0), known operands.(1) with
      | Op.Eq, Some t, Some _ -> 1.0 /. float_of_int (max 1 t)
      | Op.Lt, Some t, Some k ->
        Float.min 1.0 (Float.max 0.0 (float_of_int k /. float_of_int (max 1 t)))
      | _ -> begin
        match pred, known operands.(0), trip_of operands.(1) with
        | Op.Eq, Some _, Some t -> 1.0 /. float_of_int (max 1 t)
        | _ -> 0.5
      end
    end
    | _ -> 0.5
  end

(* (bytes, is_cache_resident) of one access through this memref *)
let bytes_of_access (v : Value.t) =
  match v.Value.typ with
  | Types.Memref { elem; space; _ } ->
    ( float_of_int (Types.dtype_bytes elem)
    , match space with
      | Types.Shared | Types.Local -> true
      | Types.Global -> false )
  | Types.Scalar d -> (float_of_int (Types.dtype_bytes d), false)

(* partial evaluation of scalar ops *)
let eval_scalar ctx (op : Op.op) : unit =
  let k = op.Op.kind in
  match k with
  | Op.Constant (Op.Cint (n, _)) -> bind ctx (Op.result op) (Ki n)
  | Op.Constant (Op.Cfloat (f, _)) -> bind ctx (Op.result op) (Kf f)
  | Op.Binop b -> begin
    match lookup ctx op.Op.operands.(0), lookup ctx op.Op.operands.(1) with
    | Ki x, Ki y -> begin
      let r =
        match b with
        | Op.Add -> Some (x + y)
        | Op.Sub -> Some (x - y)
        | Op.Mul -> Some (x * y)
        | Op.Div -> if y = 0 then None else Some (x / y)
        | Op.Rem -> if y = 0 then None else Some (x mod y)
        | Op.Min -> Some (min x y)
        | Op.Max -> Some (max x y)
        | Op.And -> Some (x land y)
        | Op.Or -> Some (x lor y)
        | Op.Xor -> Some (x lxor y)
        | Op.Shl -> Some (x lsl y)
        | Op.Shr -> Some (x asr y)
      in
      bind ctx (Op.result op) (match r with Some n -> Ki n | None -> Unk)
    end
    | _ -> bind ctx (Op.result op) Unk
  end
  | Op.Cmp pred -> begin
    match lookup ctx op.Op.operands.(0), lookup ctx op.Op.operands.(1) with
    | Ki x, Ki y ->
      let c =
        match pred with
        | Op.Eq -> x = y
        | Op.Ne -> x <> y
        | Op.Lt -> x < y
        | Op.Le -> x <= y
        | Op.Gt -> x > y
        | Op.Ge -> x >= y
      in
      bind ctx (Op.result op) (Ki (if c then 1 else 0))
    | _ -> bind ctx (Op.result op) Unk
  end
  | Op.Cast _ -> bind ctx (Op.result op) (lookup ctx op.Op.operands.(0))
  | Op.Select -> begin
    match lookup ctx op.Op.operands.(0) with
    | Ki 0 -> bind ctx (Op.result op) (lookup ctx op.Op.operands.(2))
    | Ki _ -> bind ctx (Op.result op) (lookup ctx op.Op.operands.(1))
    | _ -> bind ctx (Op.result op) Unk
  end
  | _ -> Array.iter (fun r -> bind ctx r Unk) op.Op.results

let trip_count ctx ~(lo : Value.t) ~(hi : Value.t) ~(step : Value.t)
    (op : Op.op) : int =
  match as_int (lookup ctx lo), as_int (lookup ctx hi), as_int (lookup ctx step) with
  | Some l, Some h, Some s when s > 0 -> max 0 ((h - l + s - 1) / s)
  | _ -> begin
    match Op.attr_int op "trip" with
    | Some t -> t
    | None ->
      ctx.unknown_trips <- ctx.unknown_trips + 1;
      ctx.default_trip
  end

(* team threads currently available given how many are already busy *)
let nested_threads ~(total : int) ~(outer_busy : int) =
  max 1 (total / max 1 outer_busy)

let rec cost_ops ctx ~(team : team_ctx option) ~(depth : int)
    (ops : Op.op list) : work =
  List.fold_left (fun acc op -> acc ++ cost_op ctx ~team ~depth op) zero ops

and cost_op ctx ~(team : team_ctx option) ~(depth : int) (op : Op.op) : work =
  let m = ctx.machine in
  let flop = { zero with comp = m.flop_ns *. ns } in
  (* integer/address arithmetic overlaps with other work on an
     out-of-order core: charge a third of an issue slot *)
  let iflop = { zero with comp = m.flop_ns *. ns /. 3.0 } in
  match op.Op.kind with
  | Op.Constant _ | Op.Yield | Op.Condition ->
    eval_scalar ctx op;
    zero
  | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ ->
    eval_scalar ctx op;
    let is_int =
      match (Op.result op).Value.typ with
      | Types.Scalar d -> Types.is_int_dtype d
      | Types.Memref _ -> false
    in
    if is_int then iflop else flop
  | Op.Math _ -> { zero with comp = 4.0 *. m.flop_ns *. ns }
  | Op.Dim _ ->
    bind ctx (Op.result op) Unk;
    zero
  | Op.Load ->
    bind ctx (Op.result op) Unk;
    let b, local = bytes_of_access op.Op.operands.(0) in
    if local then { zero with lbytes = b; comp = m.flop_ns *. ns /. 2.0 }
    else { zero with bytes = b; comp = m.flop_ns *. ns /. 2.0 }
  | Op.Store ->
    let b, local = bytes_of_access op.Op.operands.(1) in
    if local then { zero with lbytes = b; comp = m.flop_ns *. ns /. 2.0 }
    else { zero with bytes = b; comp = m.flop_ns *. ns /. 2.0 }
  | Op.Copy -> begin
    (* whole-buffer traffic when the size is known *)
    match op.Op.operands.(0).Value.typ with
    | Types.Memref { elem; shape; _ } ->
      let sz =
        List.fold_left
          (fun acc d -> match d with Some n -> acc * n | None -> acc)
          1 shape
      in
      { zero with
        bytes = 2.0 *. float_of_int (sz * Types.dtype_bytes elem)
      }
    | _ -> zero
  end
  | Op.Alloc ->
    bind ctx (Op.result op) Unk;
    let local =
      match (Op.result op).Value.typ with
      | Types.Memref { space = Types.Local | Types.Shared; _ } -> true
      | _ -> false
    in
    (* thread-/block-local slabs (fission caches, expanded allocas) are
       stack-like: a pointer bump, not a malloc *)
    if local then { zero with comp = m.flop_ns *. ns }
    else { zero with fixed = m.alloc_ns *. ns }
  | Op.Alloca ->
    (* stack allocation: a pointer bump *)
    bind ctx (Op.result op) Unk;
    { zero with comp = m.flop_ns *. ns }
  | Op.Dealloc -> { zero with fixed = m.alloc_ns *. ns /. 2.0 }
  | Op.If ->
    let f = cond_fraction ctx op.Op.operands.(0) in
    scale f (cost_ops ctx ~team ~depth op.Op.regions.(0).body)
    ++ scale (1.0 -. f) (cost_ops ctx ~team ~depth op.Op.regions.(1).body)
  | Op.For ->
    let trips =
      trip_count ctx ~lo:(Op.for_lo op) ~hi:(Op.for_hi op)
        ~step:(Op.for_step op) op
    in
    Value.Tbl.replace ctx.iv_trips (Op.for_iv op) trips;
    bind ctx (Op.for_iv op) Unk;
    scale (float_of_int trips) (cost_ops ctx ~team ~depth op.Op.regions.(0).body)
  | Op.While ->
    let trips =
      match Op.attr_int op "trip" with
      | Some t -> t
      | None ->
        ctx.unknown_trips <- ctx.unknown_trips + 1;
        ctx.default_trip
    in
    scale (float_of_int trips)
      (cost_ops ctx ~team ~depth op.Op.regions.(0).body
       ++ cost_ops ctx ~team ~depth op.Op.regions.(1).body)
  | Op.Return -> zero
  | Op.Call name -> begin
    match Op.find_func ctx.modul name with
    | None -> zero
    | Some f ->
      Array.iter (fun a -> bind ctx a Unk) f.Op.regions.(0).rargs;
      (* propagate known scalar arguments *)
      Array.iteri
        (fun i (p : Value.t) ->
          if i < Array.length op.Op.operands then
            bind ctx p (lookup ctx op.Op.operands.(i)))
        f.Op.regions.(0).rargs;
      Array.iter (fun r -> bind ctx r Unk) op.Op.results;
      if depth > 12 then zero
      else cost_ops ctx ~team ~depth:(depth + 1) f.Op.regions.(0).body
  end
  | Op.Barrier ->
    { zero with fixed = m.barrier_ns *. ns }
  | Op.OmpBarrier ->
    (* tree barrier: log2(T) rounds; a single-thread team only pays the
       check that it is alone *)
    let t = match team with Some t -> t.tsize | None -> 1 in
    let rounds = Float.max 0.1 (log (float_of_int t) /. log 2.0) in
    { zero with fixed = m.barrier_ns *. ns *. rounds }
  | Op.OmpParallel -> begin
    let nested = team <> None in
    let t =
      if nested then
        nested_threads ~total:ctx.threads ~outer_busy:ctx.threads
      else ctx.threads
    in
    let spawn = if nested then m.nested_spawn_ns else m.spawn_ns in
    let body =
      cost_ops ctx
        ~team:(Some { tsize = t; tnested = nested })
        ~depth op.Op.regions.(0).body
    in
    (* replicated (non-worksharing) compute runs concurrently on every
       thread: wall time is its single-thread time; memory overlaps with
       compute as on the out-of-order core *)
    { zero with
      fixed = (spawn *. ns) +. body.fixed
              +. Float.max body.comp
                   ((body.bytes *. m.mem_ns_per_byte *. ns)
                    +. (body.lbytes *. m.cache_ns_per_byte *. ns))
    }
  end
  | Op.OmpWsloop ->
    let n = Op.par_dims op in
    let trips = ref 1 in
    for i = 0 to n - 1 do
      let t =
        trip_count ctx ~lo:(Op.par_lo op i) ~hi:(Op.par_hi op i)
          ~step:(Op.par_step op i) op
      in
      Value.Tbl.replace ctx.iv_trips op.Op.regions.(0).rargs.(i) t;
      bind ctx op.Op.regions.(0).rargs.(i) Unk;
      trips := !trips * t
    done;
    let body = cost_ops ctx ~team ~depth op.Op.regions.(0).body in
    let tsize, tnested =
      match team with Some t -> (t.tsize, t.tnested) | None -> (1, false)
    in
    realize ctx ~tsize ~nested:tnested ~trips:!trips body
  | Op.Parallel _ ->
    (* GPU-semantics parallel loop costed as spawn + worksharing (used
       for reference curves before lowering) *)
    let n = Op.par_dims op in
    let trips = ref 1 in
    for i = 0 to n - 1 do
      let t =
        trip_count ctx ~lo:(Op.par_lo op i) ~hi:(Op.par_hi op i)
          ~step:(Op.par_step op i) op
      in
      Value.Tbl.replace ctx.iv_trips op.Op.regions.(0).rargs.(i) t;
      bind ctx op.Op.regions.(0).rargs.(i) Unk;
      trips := !trips * t
    done;
    let body =
      cost_ops ctx
        ~team:(Some { tsize = ctx.threads; tnested = false })
        ~depth op.Op.regions.(0).body
    in
    let w = realize ctx ~tsize:ctx.threads ~nested:false ~trips:!trips body in
    { w with fixed = w.fixed +. (ctx.machine.spawn_ns *. ns) }
  | Op.Module | Op.Func _ ->
    cost_ops ctx ~team ~depth op.Op.regions.(0).body

(* Turn per-iteration work into wall time across the team. *)
and realize ctx ~(tsize : int) ~(nested : bool) ~(trips : int)
    (per_iter : work) : work =
  let m = ctx.machine in
  let eff = max 1 (min tsize trips) in
  let ftrips = float_of_int trips in
  let share_mult = if nested then m.false_sharing_mult else 1.0 in
  let cache_time =
    ftrips *. per_iter.lbytes *. m.cache_ns_per_byte *. share_mult *. ns
    /. float_of_int eff
  in
  let comp_time =
    (ftrips *. (per_iter.comp +. per_iter.fixed) /. float_of_int eff)
    +. cache_time
  in
  let bw = m.bandwidth_gbs *. 1e9 in
  let bytes_time = ftrips *. per_iter.bytes *. share_mult /. bw in
  (* single-thread byte cost floor: even unsaturated, memory is not free *)
  let bytes_floor =
    ftrips *. per_iter.bytes *. m.mem_ns_per_byte *. ns /. float_of_int eff
  in
  { comp = 0.0
  ; bytes = 0.0
  ; lbytes = 0.0
  ; fixed = Float.max comp_time (Float.max bytes_time bytes_floor)
            +. (m.chunk_ns *. ns)
  }

type result =
  { seconds : float
  ; unknown_trips : int
  }

(* Cost one function of [m] with concrete scalar arguments ([None] for
   buffers/unknowns), on [machine] with [threads]. *)
let of_func ?(default_trip = 16) (machine : Machine.t) ~(threads : int)
    (modul : Op.op) (fname : string) (args : sval list) : result =
  let f =
    match Op.find_func modul fname with
    | Some f -> f
    | None -> invalid_arg ("Cost.of_func: no function " ^ fname)
  in
  let ctx =
    { machine
    ; threads = min threads machine.cores
    ; modul
    ; env = Value.Tbl.create 256
    ; iv_trips = Value.Tbl.create 64
    ; unknown_trips = 0
    ; default_trip
    }
  in
  List.iteri
    (fun i s ->
      if i < Array.length f.Op.regions.(0).rargs then
        bind ctx f.Op.regions.(0).rargs.(i) s)
    args;
  let w = cost_ops ctx ~team:None ~depth:0 f.Op.regions.(0).body in
  (* any leftover unrealized work runs on one thread *)
  { seconds =
      w.fixed +. w.comp
      +. (w.bytes *. machine.mem_ns_per_byte *. ns)
      +. (w.lbytes *. machine.cache_ns_per_byte *. ns)
  ; unknown_trips = ctx.unknown_trips
  }
