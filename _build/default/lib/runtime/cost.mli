(** Static cost evaluation: a partial evaluator that walks the IR with a
    run's integer arguments and produces a simulated execution time on a
    machine model with a given thread count.  Compute scales with threads
    until memory bandwidth saturates; overheads (team spawns, barriers,
    worksharing chunks) are charged per the machine model.  Trip counts
    derived from the arguments are exact; data-dependent ones fall back
    to a [trip] attribute or [default_trip]. *)

type sval =
  | Ki of int
  | Kf of float
  | Unk

type result =
  { seconds : float
  ; unknown_trips : int (** how often a default trip count was used *)
  }

val of_func :
  ?default_trip:int ->
  Machine.t ->
  threads:int ->
  Ir.Op.op ->
  string ->
  sval list ->
  result
