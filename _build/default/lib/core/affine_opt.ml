(* The "affine" ablation of Fig. 13: raising loops to their affine form
   enables simple loop optimizations — most importantly full unrolling of
   small constant-trip loops that contain synchronization.  Unrolling the
   backprop reduction loop turns its in-loop barrier into straight-line
   barriers between if statements, which fission handles without any
   interchange machinery, and lets the [1 << i] / [ty %% 2^i] arithmetic
   constant-fold (the paper reports 2.6x on backprop from this alone). *)

open Ir
open Analysis

let max_unroll = 16

let const_of info (v : Value.t) =
  match Info.defining_op info v with
  | Some { Op.kind = Op.Constant (Op.Cint (n, _)); _ } -> Some n
  | _ -> None

(* Fully unroll [For] ops with known trip count <= max_unroll that contain
   a barrier.  Returns the number of loops unrolled. *)
let run (m : Op.op) : int =
  (* loop bounds are often small constant expressions ([i <= 4 + 1]): fold
     them first so trip counts become visible *)
  Canonicalize.run m;
  let unrolled = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let info = Info.build m in
    let rec visit (op : Op.op) : Op.op list =
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
        op.Op.regions;
      match op.Op.kind with
      | Op.For when Op.contains_barrier op -> begin
        match
          ( const_of info (Op.for_lo op)
          , const_of info (Op.for_hi op)
          , const_of info (Op.for_step op) )
        with
        | Some lo, Some hi, Some step
          when step > 0 && (hi - lo + step - 1) / step <= max_unroll ->
          incr unrolled;
          changed := true;
          let iv = Op.for_iv op in
          let body = op.Op.regions.(0).body in
          let out = ref [] in
          let i = ref lo in
          while !i < hi do
            let c = Builder.const_int !i in
            let subst = Clone.create_subst () in
            Clone.add_subst subst ~from:iv ~to_:(Op.result c);
            out := !out @ (c :: Clone.clone_ops subst body);
            i := !i + step
          done;
          !out
        | _ -> [ op ]
      end
      | _ -> [ op ]
    in
    match visit m with [ _ ] -> () | _ -> ()
  done;
  if !unrolled > 0 then Canonicalize.run m;
  !unrolled
