(** Memory-to-register promotion, including across barriers
    (Sec. IV-B): store-to-load forwarding (a barrier between the pair
    does not kill it when no OTHER thread can write that address — the
    "current-thread hole"), dead-store elimination, and removal of
    allocations that are only ever stored to. *)

type report =
  { forwarded_loads : int
  ; removed_stores : int
  ; removed_allocas : int
  }

val run : Ir.Op.op -> report
