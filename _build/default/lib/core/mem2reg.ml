(* Memory-to-register promotion, including across barriers (Sec. IV-B).

   Three cooperating transformations:

   1. Store-to-load forwarding: a load reading exactly the address of an
      earlier available store is replaced by the stored value.  A barrier
      between them does NOT kill the forwarding when the barrier's memory
      effects (accesses of *other* threads, per the Sec. III-A hole)
      cannot write that address — this is what lets the weights[ty][tx]
      store/load pair of Rodinia backprop (Fig. 9) promote to a register.

   2. Dead store elimination: a store overwritten at the same address
      before any possible observation (same-thread loads, calls,
      cross-thread reads through a barrier) is removed.

   3. Dead allocation elimination: an alloca/alloc whose only uses are
      stores into it (and deallocs) is removed together with those
      stores.  This erases the frontend's mutable-local slots once their
      loads were forwarded. *)

open Ir
open Analysis

type entry =
  { e_base : Value.t
  ; e_idx : int array (* value ids of the index operands *)
  ; e_val : Value.t
  ; e_store : Op.op
  ; mutable e_observed : bool
  ; e_read : Effects.access (* the address as a read (for write conflicts) *)
  ; e_write : Effects.access (* the address as a write (for read conflicts) *)
  }

type st =
  { subst : Clone.subst
  ; dead : (int, unit) Hashtbl.t (* oids of stores to delete *)
  ; info : Info.t
  ; modul : Op.op
  ; barrier_sets : (int, Effects.access list * Effects.access list) Hashtbl.t
  ; mutable forwards : int
  ; mutable dead_stores : int
  }

(* Nearest enclosing block-level parallel loop, if any. *)
let rec nearest_block_par (info : Info.t) (op : Op.op) : Op.op option =
  match Info.parent info op with
  | None -> None
  | Some p -> begin
    match p.Op.kind with
    | Op.Parallel Op.Block -> Some p
    | _ -> nearest_block_par info p
  end

(* Is this buffer private to each thread of the block loop (allocated
   inside the thread-parallel body)? *)
let thread_private (st : st) (base : Value.t) : bool =
  match Info.defining_op st.info base with
  | Some ({ Op.kind = Op.Alloc | Op.Alloca; _ } as def) ->
    nearest_block_par st.info def <> None
  | _ -> false

let entry_of_store (ctx : Effects.ctx) (op : Op.op) : entry =
  let idx_ops = Array.sub op.operands 2 (Array.length op.operands - 2) in
  let dims, livs = Effects.derive_idx ctx idx_ops in
  let mk kind =
    Effects.mk_access ~base:op.operands.(1) ~idx:dims ~livs kind
  in
  { e_base = op.operands.(1)
  ; e_idx = Array.map (fun (v : Value.t) -> v.id) idx_ops
  ; e_val = op.operands.(0)
  ; e_store = op
  ; e_observed = false
  ; e_read = mk Effects.Read
  ; e_write = mk Effects.Write
  }

let exact_match (e : entry) ~(base : Value.t) ~(idx : int array) =
  Value.equal e.e_base base && e.e_idx = idx

(* Access conflict helpers against an op's whole effect list. *)
let may_read_entry ctx (effs : Effects.access list) (e : entry) =
  List.exists
    (fun (a : Effects.access) ->
      a.Effects.acc_kind = Effects.Read
      && Effects.any_thread_conflict ctx e.e_write a)
    effs

let may_write_entry ctx (effs : Effects.access list) (e : entry) =
  List.exists
    (fun (a : Effects.access) ->
      a.Effects.acc_kind = Effects.Write
      && Effects.any_thread_conflict ctx e.e_read a)
    effs

let rec walk_region (st : st) ~(par : Op.op option)
    (entries : entry list ref) (ops : Op.op list) : Op.op list =
  let ctx = Effects.make_ctx ~modul:st.modul ?par st.info in
  List.concat_map
    (fun (op : Op.op) ->
      op.operands <- Array.map (Clone.lookup st.subst) op.operands;
      match op.kind with
      | Op.Store ->
        let base = op.operands.(1) in
        let idx =
          Array.map
            (fun (v : Value.t) -> v.id)
            (Array.sub op.operands 2 (Array.length op.operands - 2))
        in
        (* exact overwrite: the previous store is dead if unobserved *)
        entries :=
          List.filter
            (fun e ->
              if exact_match e ~base ~idx then begin
                if not e.e_observed then begin
                  Hashtbl.replace st.dead e.e_store.Op.oid ();
                  st.dead_stores <- st.dead_stores + 1
                end;
                false
              end
              else true)
            !entries;
        (* non-exact may-alias overwrite invalidates *)
        let this = entry_of_store ctx op in
        entries :=
          List.filter
            (fun e -> not (Effects.any_thread_conflict ctx e.e_read this.e_write))
            !entries;
        entries := this :: !entries;
        [ op ]
      | Op.Load ->
        let base = op.operands.(0) in
        let idx =
          Array.map
            (fun (v : Value.t) -> v.id)
            (Array.sub op.operands 1 (Array.length op.operands - 1))
        in
        let rec find = function
          | [] -> None
          | e :: rest -> if exact_match e ~base ~idx then Some e else find rest
        in
        begin
          match find !entries with
          | Some e ->
            st.forwards <- st.forwards + 1;
            Clone.add_subst st.subst ~from:(Op.result op) ~to_:e.e_val;
            []
          | None ->
            (* may observe entries it aliases *)
            let effs = Effects.collect_op ctx ~pinned:Value.Set.empty op in
            List.iter
              (fun e -> if may_read_entry ctx effs e then e.e_observed <- true)
              !entries;
            [ op ]
        end
      | Op.Call _ | Op.Copy | Op.Dealloc ->
        let effs = Effects.collect_op ctx ~pinned:Value.Set.empty op in
        List.iter
          (fun e -> if may_read_entry ctx effs e then e.e_observed <- true)
          !entries;
        entries := List.filter (fun e -> not (may_write_entry ctx effs e)) !entries;
        [ op ]
      | Op.Barrier -> begin
        match par, Hashtbl.find_opt st.barrier_sets op.oid with
        | Some _, Some (before, after) ->
          let others = before @ after in
          entries :=
            List.filter
              (fun e ->
                if thread_private st e.e_base then true
                else begin
                  (* cross-thread reads observe; cross-thread writes kill *)
                  if
                    List.exists
                      (fun (a : Effects.access) ->
                        a.Effects.acc_kind = Effects.Read
                        && Effects.cross_thread_conflict ctx e.e_write a)
                      others
                  then e.e_observed <- true;
                  not
                    (List.exists
                       (fun (a : Effects.access) ->
                         a.Effects.acc_kind = Effects.Write
                         && Effects.cross_thread_conflict ctx e.e_read a)
                       others)
                end)
              !entries;
          [ op ]
        | _ ->
          (* no context: conservative *)
          List.iter (fun e -> e.e_observed <- true) !entries;
          entries := List.filter (fun e -> thread_private st e.e_base) !entries;
          [ op ]
      end
      | Op.OmpBarrier ->
        List.iter
          (fun e -> if not (thread_private st e.e_base) then e.e_observed <- true)
          !entries;
        entries := List.filter (fun e -> thread_private st e.e_base) !entries;
        [ op ]
      | Op.Module | Op.Func _ ->
        Array.iter
          (fun (r : Op.region) ->
            let inner = ref [] in
            r.body <- walk_region st ~par:None inner r.body)
          op.regions;
        [ op ]
      | Op.For | Op.While | Op.If | Op.Parallel _ | Op.OmpParallel
      | Op.OmpWsloop ->
        (* observe/invalidate outer entries by the subtree's effects, then
           recurse with the survivors visible inside *)
        let effs = Effects.collect ctx [ op ] in
        List.iter
          (fun e -> if may_read_entry ctx effs e then e.e_observed <- true)
          !entries;
        entries := List.filter (fun e -> not (may_write_entry ctx effs e)) !entries;
        let inner_par =
          match op.kind with Op.Parallel Op.Block -> Some op | _ -> par
        in
        Array.iter
          (fun (r : Op.region) ->
            (* region-local view: outer entries visible inside, entries
               created by local stores die at region exit *)
            let inner = ref !entries in
            r.body <- walk_region st ~par:inner_par inner r.body)
          op.regions;
        [ op ]
      | _ ->
        [ op ])
    ops

(* --- dead allocation elimination --- *)

let dead_allocas (m : Op.op) : int =
  let removed = ref 0 in
  let uses : (int, [ `Store_target | `Dealloc | `Other ] list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let note (v : Value.t) u =
    match Hashtbl.find_opt uses v.id with
    | Some l -> l := u :: !l
    | None -> Hashtbl.replace uses v.id (ref [ u ])
  in
  Op.iter
    (fun (o : Op.op) ->
      match o.kind with
      | Op.Store ->
        note o.operands.(1) `Store_target;
        note o.operands.(0) `Other
      | Op.Dealloc -> note o.operands.(0) `Dealloc
      | _ -> Array.iter (fun v -> note v `Other) o.operands)
    m;
  let removable (v : Value.t) =
    match Hashtbl.find_opt uses v.id with
    | None -> true
    | Some l -> List.for_all (fun u -> u <> `Other) !l
  in
  let doomed = Hashtbl.create 16 in
  Op.iter
    (fun (o : Op.op) ->
      match o.kind with
      | (Op.Alloc | Op.Alloca) when removable (Op.result o) ->
        Hashtbl.replace doomed (Op.result o).id ()
      | _ -> ())
    m;
  let rec clean (op : Op.op) : Op.op list =
    Array.iter
      (fun (r : Op.region) -> r.body <- List.concat_map clean r.body)
      op.regions;
    match op.kind with
    | Op.Alloc | Op.Alloca when Hashtbl.mem doomed (Op.result op).id ->
      incr removed;
      []
    | Op.Store when Hashtbl.mem doomed op.operands.(1).id -> []
    | Op.Dealloc when Hashtbl.mem doomed op.operands.(0).id -> []
    | _ -> [ op ]
  in
  (match clean m with [ _ ] -> () | _ -> ());
  !removed

(* --- entry point --- *)

type report =
  { forwarded_loads : int
  ; removed_stores : int
  ; removed_allocas : int
  }

let run (m : Op.op) : report =
  let info = Info.build m in
  (* Precompute every barrier's interval sets on the unmodified tree. *)
  let barrier_sets = Hashtbl.create 16 in
  Op.iter
    (fun (o : Op.op) ->
      if o.Op.kind = Op.Barrier then begin
        match nearest_block_par info o with
        | Some par ->
          let ctx = Effects.make_ctx ~modul:m ~par info in
          Hashtbl.replace barrier_sets o.Op.oid
            (Effects.barrier_intervals ctx ~par o)
        | None -> ()
      end)
    m;
  let st =
    { subst = Clone.create_subst ()
    ; dead = Hashtbl.create 16
    ; info
    ; modul = m
    ; barrier_sets
    ; forwards = 0
    ; dead_stores = 0
    }
  in
  let entries = ref [] in
  (match walk_region st ~par:None entries [ m ] with [ _ ] -> () | _ -> ());
  (* delete dead stores *)
  let rec clean (op : Op.op) : Op.op list =
    Array.iter
      (fun (r : Op.region) -> r.body <- List.concat_map clean r.body)
      op.regions;
    if Hashtbl.mem st.dead op.oid then [] else [ op ]
  in
  (match clean m with [ _ ] -> () | _ -> ());
  let removed_allocas = dead_allocas m in
  { forwarded_loads = st.forwards
  ; removed_stores = st.dead_stores
  ; removed_allocas
  }
