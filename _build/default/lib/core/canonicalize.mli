(** Canonicalization: constant folding, algebraic identities, constant
    control-flow simplification and dead pure-op elimination.  These are
    deliberately generic transformations: the barrier semantics are
    designed so that passes like this keep working unmodified in code
    containing [polygeist.barrier]. *)

(** Run to fixpoint over a module, in place. *)
val run : Ir.Op.op -> unit

(** Dead pure-op elimination only; returns whether anything changed. *)
val dce : Ir.Op.op -> bool
