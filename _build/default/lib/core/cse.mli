(** Scope-aware common sub-expression elimination.  Loads participate
    through memory epochs: stores/calls invalidate; barriers invalidate
    everything except thread-private allocations (the precise
    cross-barrier cases belong to {!Mem2reg}). *)

val run : Ir.Op.op -> unit
