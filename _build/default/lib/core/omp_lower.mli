(** Lowering of barrier-free parallel loops to the OpenMP dialect, with
    the Sec. IV-D block-parallelism optimizations: grid+block collapse,
    parallel-region fusion (Fig. 10), region hoisting out of serial loops
    (Fig. 11), and inner-loop serialization ("PolygeistInnerSer"). *)

type inner_mode =
  | Inner_parallel (** keep nested regions: "PolygeistInnerPar" *)
  | Inner_serial (** serialize nested regions: "PolygeistInnerSer" *)

type options =
  { inner : inner_mode
  ; fuse : bool
  ; hoist : bool
  ; collapse : bool
  }

val default_options : options

(** [default_options] with [inner = Inner_parallel]. *)
val inner_par_options : options

type report =
  { serialized : int
  ; collapsed : int
  ; fused : int
  ; hoisted : int
  }

val run : ?options:options -> Ir.Op.op -> report
