(** Dinic max-flow / min-cut on small integer graphs, used by parallel
    loop splitting (Sec. III-B1) to pick the minimum set of SSA values to
    cache across a barrier fission. *)

type graph

val inf : int
val create : nnodes:int -> graph
val add_edge : graph -> int -> int -> cap:int -> unit
val max_flow : graph -> s:int -> t:int -> int

(** After {!max_flow}: nodes reachable from [s] in the residual graph; an
    edge from a reachable to an unreachable node is in the min cut. *)
val residual_reachable : graph -> s:int -> bool array
