(* Loop-invariant code motion, in two flavours.

   Serial [scf.for]: the classical transformation — an op with
   loop-invariant operands moves out when no other op in the loop may
   conflict with its memory accesses, and (for ops that touch memory) the
   loop provably executes at least once.

   Parallel loops (Sec. IV-C): the lock-step argument.  Iterations of a
   parallel loop may be interleaved arbitrarily, so it is legal to imagine
   all threads executing instruction k before any executes k+1.  An op
   can therefore be hoisted when its operands are invariant and only
   *prior* ops in the loop body conflict with it — conflicts with
   *subsequent* ops do not matter.  This is strictly more powerful than
   the serial rule and is what hoists the O(N) call to @sum out of the
   normalize kernel of Fig. 1, turning O(N^2) total work into O(N). *)

open Ir
open Analysis

let is_pure (op : Op.op) =
  match op.kind with
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Dim _ ->
    true
  | _ -> false

(* Effects of an op, or None when the op is opaque to this analysis. *)
let op_effects ctx (op : Op.op) : Effects.access list =
  Effects.collect_op ctx ~pinned:Value.Set.empty op

let read_only effs =
  List.for_all (fun (a : Effects.access) -> a.Effects.acc_kind = Effects.Read) effs

(* --- parallel LICM --- *)

(* Hoist ops out of one parallel loop body.  Returns hoisted ops (in
   order); the loop body is updated in place. *)
let hoist_from_parallel (info : Info.t) (modul : Op.op) (par : Op.op) :
  Op.op list =
  let ctx = Effects.make_ctx ~modul ~par info in
  let body = par.Op.regions.(0).body in
  let hoisted = ref [] in
  let hoisted_vals = ref Value.Set.empty in
  let prior_writes = ref [] in
  let invariant (v : Value.t) =
    (not (Info.defined_inside info ~container:par v))
    || Value.Set.mem v !hoisted_vals
  in
  let keep = ref [] in
  List.iter
    (fun (op : Op.op) ->
      let operands_ok = Array.for_all invariant op.operands in
      let can_hoist =
        operands_ok
        &&
        if is_pure op then true
        else begin
          match op.kind with
          | Op.Load | Op.Call _ ->
            let effs = op_effects ctx op in
            read_only effs
            && not
                 (List.exists
                    (fun (r : Effects.access) ->
                      List.exists
                        (fun w -> Effects.any_thread_conflict ctx r w)
                        !prior_writes)
                    effs)
          | _ -> false
        end
      in
      if can_hoist then begin
        hoisted := op :: !hoisted;
        Array.iter
          (fun v -> hoisted_vals := Value.Set.add v !hoisted_vals)
          op.results
      end
      else begin
        keep := op :: !keep;
        let effs = op_effects ctx op in
        prior_writes :=
          List.filter
            (fun (a : Effects.access) -> a.Effects.acc_kind = Effects.Write)
            effs
          @ !prior_writes
      end)
    body;
  par.Op.regions.(0).body <- List.rev !keep;
  List.rev !hoisted

(* --- serial LICM --- *)

let const_of info (v : Value.t) =
  match Info.defining_op info v with
  | Some { Op.kind = Op.Constant (Op.Cint (n, _)); _ } -> Some n
  | _ -> None

let trip_at_least_one info (op : Op.op) =
  match const_of info (Op.for_lo op), const_of info (Op.for_hi op) with
  | Some lo, Some hi -> lo < hi
  | _ -> false

let hoist_from_for (info : Info.t) (modul : Op.op) (floop : Op.op) :
  Op.op list =
  let ctx = Effects.make_ctx ~modul info in
  let body = floop.Op.regions.(0).body in
  let all_writes =
    List.filter
      (fun (a : Effects.access) -> a.Effects.acc_kind = Effects.Write)
      (Effects.collect ctx body)
  in
  let nonzero_trip = trip_at_least_one info floop in
  let hoisted = ref [] in
  let hoisted_vals = ref Value.Set.empty in
  let invariant (v : Value.t) =
    (not (Info.defined_inside info ~container:floop v))
    || Value.Set.mem v !hoisted_vals
  in
  let keep = ref [] in
  List.iter
    (fun (op : Op.op) ->
      let operands_ok = Array.for_all invariant op.operands in
      let can_hoist =
        operands_ok
        &&
        if is_pure op then true
        else begin
          match op.kind with
          | Op.Load | Op.Call _ when nonzero_trip ->
            let effs = op_effects ctx op in
            read_only effs
            && not
                 (List.exists
                    (fun r ->
                      List.exists
                        (fun w -> Effects.any_thread_conflict ctx r w)
                        all_writes)
                    effs)
          | _ -> false
        end
      in
      if can_hoist then begin
        hoisted := op :: !hoisted;
        Array.iter
          (fun v -> hoisted_vals := Value.Set.add v !hoisted_vals)
          op.results
      end
      else keep := op :: !keep)
    body;
  floop.Op.regions.(0).body <- List.rev !keep;
  List.rev !hoisted

(* --- driver: innermost-first until fixpoint --- *)

let run (m : Op.op) : int =
  let moved = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let info = Info.build m in
    let rec visit (op : Op.op) : Op.op list =
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
        op.Op.regions;
      match op.Op.kind with
      | Op.Parallel _ | Op.OmpWsloop ->
        let h = hoist_from_parallel info m op in
        if h <> [] then begin
          changed := true;
          moved := !moved + List.length h
        end;
        h @ [ op ]
      | Op.For ->
        let h = hoist_from_for info m op in
        if h <> [] then begin
          changed := true;
          moved := !moved + List.length h
        end;
        h @ [ op ]
      | _ -> [ op ]
    in
    match visit m with [ _ ] -> () | _ -> ()
  done;
  !moved
