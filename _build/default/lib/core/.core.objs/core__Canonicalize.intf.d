lib/core/canonicalize.mli: Ir
