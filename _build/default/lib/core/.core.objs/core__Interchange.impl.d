lib/core/interchange.ml: Analysis Array Builder Clone Effects Info Ir List Op Printer Printf String Types Value
