lib/core/cpuify.ml: Array Barrier_elim Builder Canonicalize Cse Interchange Ir Licm List Mem2reg Op Printer Printf Split
