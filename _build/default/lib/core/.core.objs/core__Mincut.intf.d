lib/core/mincut.mli:
