lib/core/cse.ml: Analysis Array Clone Hashtbl Info Ir List Op Printf Types Value
