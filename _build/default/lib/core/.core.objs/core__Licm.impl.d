lib/core/licm.ml: Analysis Array Effects Info Ir List Op Value
