lib/core/affine_opt.ml: Analysis Array Builder Canonicalize Clone Info Ir List Op Value
