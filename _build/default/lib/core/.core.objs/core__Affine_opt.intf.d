lib/core/affine_opt.mli: Ir
