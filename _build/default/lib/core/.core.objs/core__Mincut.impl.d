lib/core/mincut.ml: Array Queue
