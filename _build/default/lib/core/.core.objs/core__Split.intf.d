lib/core/split.mli: Ir
