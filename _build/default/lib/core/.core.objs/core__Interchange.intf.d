lib/core/interchange.mli: Ir
