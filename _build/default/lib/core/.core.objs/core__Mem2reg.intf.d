lib/core/mem2reg.mli: Ir
