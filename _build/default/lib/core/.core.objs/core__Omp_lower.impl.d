lib/core/omp_lower.ml: Array Builder Clone Ir List Op Value
