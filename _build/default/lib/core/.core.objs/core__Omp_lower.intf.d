lib/core/omp_lower.mli: Ir
