lib/core/split.ml: Array Builder Clone Ir Lazy List Mincut Op Option Printf Rewrite Types Value
