lib/core/cpuify.mli: Ir
