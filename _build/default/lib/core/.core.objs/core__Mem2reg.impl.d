lib/core/mem2reg.ml: Analysis Array Clone Effects Hashtbl Info Ir List Op Value
