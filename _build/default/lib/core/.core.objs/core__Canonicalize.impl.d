lib/core/canonicalize.ml: Array Builder Clone Float Int32 Ir List Op Option Types Value
