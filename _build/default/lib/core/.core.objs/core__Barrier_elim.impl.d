lib/core/barrier_elim.ml: Analysis Array Builder Effects Info Ir List Op
