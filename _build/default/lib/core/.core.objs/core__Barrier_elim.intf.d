lib/core/barrier_elim.mli: Analysis Ir
