(* Dinic max-flow / min-cut on small integer graphs.

   Used by parallel loop splitting (Sec. III-B1) to choose the minimum
   set of SSA values to cache in memory across a barrier fission, with
   everything else recomputed — the technique the paper adapts from
   Enzyme's cache-minimization. *)

type edge =
  { dst : int
  ; mutable cap : int
  ; rev : int (* index of the reverse edge in adj.(dst) *)
  }

type graph =
  { adj : edge array ref array
  ; n : int
  }

let inf = max_int / 4

let create ~(nnodes : int) : graph =
  { adj = Array.init nnodes (fun _ -> ref [||]); n = nnodes }

let push (r : edge array ref) (e : edge) =
  r := Array.append !r [| e |];
  Array.length !r - 1

let add_edge (g : graph) (u : int) (v : int) ~(cap : int) =
  let iu = Array.length !(g.adj.(u)) in
  let iv = Array.length !(g.adj.(v)) in
  ignore (push g.adj.(u) { dst = v; cap; rev = iv });
  ignore (push g.adj.(v) { dst = u; cap = 0; rev = iu })

let max_flow (g : graph) ~(s : int) ~(t : int) : int =
  let level = Array.make g.n (-1) in
  let iter = Array.make g.n 0 in
  let bfs () =
    Array.fill level 0 g.n (-1);
    let q = Queue.create () in
    level.(s) <- 0;
    Queue.push s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun (e : edge) ->
          if e.cap > 0 && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(u) + 1;
            Queue.push e.dst q
          end)
        !(g.adj.(u))
    done;
    level.(t) >= 0
  in
  let rec dfs u f =
    if u = t then f
    else begin
      let res = ref 0 in
      let arr = !(g.adj.(u)) in
      while !res = 0 && iter.(u) < Array.length arr do
        let e = arr.(iter.(u)) in
        if e.cap > 0 && level.(e.dst) = level.(u) + 1 then begin
          let d = dfs e.dst (min f e.cap) in
          if d > 0 then begin
            e.cap <- e.cap - d;
            let back = !(g.adj.(e.dst)).(e.rev) in
            back.cap <- back.cap + d;
            res := d
          end
          else iter.(u) <- iter.(u) + 1
        end
        else iter.(u) <- iter.(u) + 1
      done;
      !res
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.fill iter 0 g.n 0;
    let f = ref (dfs s inf) in
    while !f > 0 do
      flow := !flow + !f;
      f := dfs s inf
    done
  done;
  !flow

(* After [max_flow]: the set of nodes reachable from [s] in the residual
   graph.  An edge (u,v) with u reachable and v not is in the min cut. *)
let residual_reachable (g : graph) ~(s : int) : bool array =
  let seen = Array.make g.n false in
  let q = Queue.create () in
  seen.(s) <- true;
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (e : edge) ->
        if e.cap > 0 && not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          Queue.push e.dst q
        end)
      !(g.adj.(u))
  done;
  seen
