(* Lowering of barrier-free parallel loops to the OpenMP dialect, plus the
   block-parallelism optimizations of Sec. IV-D:

   - each parallel loop becomes [omp.parallel { omp.wsloop { body } }];
   - collapse: when a grid worksharing loop immediately wraps the thread
     parallel loop (no shared-memory allocation between), the two collapse
     into one worksharing loop over the combined space;
   - fusion (Fig. 10): adjacent [omp.parallel] regions merge, separated by
     an [omp.barrier], paying thread-team startup once;
   - hoisting (Fig. 11): an [omp.parallel] that is the whole body of a
     serial for moves outside it, again paying startup once;
   - inner serialization ("PolygeistInnerSer"): nested parallel regions
     (block-level parallelism under grid-level) are rewritten into serial
     loops, trading nested-team overhead and false sharing for locality.

   Our omp.wsloop carries NO implicit end-of-loop barrier; every needed
   join is an explicit [omp.barrier], as in Fig. 10. *)

open Ir

type inner_mode =
  | Inner_parallel (* nested omp regions: "PolygeistInnerPar" *)
  | Inner_serial (* serialize nested regions: "PolygeistInnerSer" *)

type options =
  { inner : inner_mode
  ; fuse : bool (* Fig. 10 region fusion *)
  ; hoist : bool (* Fig. 11 region hoisting out of serial for *)
  ; collapse : bool (* grid+block collapse when legal *)
  }

let default_options =
  { inner = Inner_serial; fuse = true; hoist = true; collapse = true }

let inner_par_options = { default_options with inner = Inner_parallel }

(* --- step 1: parallel -> omp.parallel { omp.wsloop } --- *)

let lower_parallel (op : Op.op) : Op.op =
  let n = Op.par_dims op in
  let region = op.regions.(0) in
  let ws =
    Op.mk Op.OmpWsloop ~operands:op.operands
      ~regions:[| Op.region ~args:region.rargs region.body |]
  in
  Op.mk Op.OmpParallel ~regions:[| Op.region [ ws ] |]
    ~attrs:[ ("dims", Op.Aint n) ]

let rec lower_all (op : Op.op) : Op.op list =
  Array.iter
    (fun (r : Op.region) -> r.body <- List.concat_map lower_all r.body)
    op.regions;
  match op.kind with
  | Op.Parallel _ ->
    if Op.contains_barrier op then
      invalid_arg "omp lowering requires barrier-free parallel loops";
    [ lower_parallel op ]
  | _ -> [ op ]

(* --- inner serialization --- *)

(* Rewrite an [omp.parallel { omp.wsloop { body } }] nested inside another
   omp.parallel into a serial loop nest. *)
let serialize_one (op : Op.op) : Op.op list =
  match op.regions.(0).body with
  | [ ({ Op.kind = Op.OmpWsloop; _ } as ws) ] ->
    let n = Op.par_dims ws in
    let ivs = ws.Op.regions.(0).rargs in
    let body = ws.Op.regions.(0).body in
    (* build a serial For nest, innermost holding the body *)
    let rec build dim (subst : Clone.subst) : Op.op list =
      if dim >= n then Clone.clone_ops subst body
      else
        [ Builder.for_ ~lo:(Op.par_lo ws dim) ~hi:(Op.par_hi ws dim)
            ~step:(Op.par_step ws dim) (fun iv ->
              Clone.add_subst subst ~from:ivs.(dim) ~to_:iv;
              build (dim + 1) subst)
        ]
    in
    build 0 (Clone.create_subst ())
  | _ -> [ op ] (* fused region: keep *)

let serialize_nested (m : Op.op) : int =
  let count = ref 0 in
  let rec visit ~(in_par : bool) (op : Op.op) : Op.op list =
    let inner_in_par = in_par || op.kind = Op.OmpParallel in
    Array.iter
      (fun (r : Op.region) ->
        r.body <- List.concat_map (visit ~in_par:inner_in_par) r.body)
      op.regions;
    match op.kind with
    | Op.OmpParallel when in_par ->
      incr count;
      serialize_one op
    | _ -> [ op ]
  in
  (match visit ~in_par:false m with [ _ ] -> () | _ -> ());
  !count

(* --- collapse --- *)

(* omp.parallel { omp.wsloop G { pures...; omp.parallel { omp.wsloop B
   { body } } } }  ==>  omp.parallel { omp.wsloop (G@B) { pures; body } }.
   Legal when nothing with memory effects sits between the two loops — in
   particular no shared-memory allocation. *)
let is_pure (op : Op.op) =
  match op.kind with
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Dim _ ->
    true
  | _ -> false

let collapse (m : Op.op) : int =
  let count = ref 0 in
  let rec visit (op : Op.op) : Op.op list =
    Array.iter
      (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
      op.regions;
    match op.kind with
    | Op.OmpParallel -> begin
      match op.regions.(0).body with
      | [ ({ Op.kind = Op.OmpWsloop; _ } as g) ] -> begin
        (* split the grid loop body into pures + a sole inner parallel *)
        let rec split pures = function
          | [ ({ Op.kind = Op.OmpParallel; _ } as ip) ] ->
            Some (List.rev pures, ip)
          | p :: rest when is_pure p -> split (p :: pures) rest
          | _ -> None
        in
        match split [] g.Op.regions.(0).body with
        | Some (pures, ip) -> begin
          match ip.Op.regions.(0).body with
          | [ ({ Op.kind = Op.OmpWsloop; _ } as b) ] ->
            let ng = Op.par_dims g and nb = Op.par_dims b in
            let gops = g.Op.operands and bops = b.Op.operands in
            let operands =
              Array.concat
                [ Array.sub gops 0 ng; Array.sub bops 0 nb (* lbs *)
                ; Array.sub gops ng ng; Array.sub bops nb nb (* ubs *)
                ; Array.sub gops (2 * ng) ng; Array.sub bops (2 * nb) nb
                ]
            in
            let args =
              Array.append g.Op.regions.(0).rargs b.Op.regions.(0).rargs
            in
            (* the inner-loop bounds must be defined outside the grid loop
               (they are SSA operands of b, possibly computed by pures —
               then collapse is not legal without hoisting; bail) *)
            let defined_by_pures =
              List.concat_map
                (fun (p : Op.op) -> Array.to_list p.results)
                pures
              |> Value.Set.of_list
            in
            let bound_ok =
              Array.for_all
                (fun (v : Value.t) ->
                  (not (Value.Set.mem v defined_by_pures))
                  && not
                       (Array.exists (Value.equal v) g.Op.regions.(0).rargs))
                b.Op.operands
            in
            if not bound_ok then [ op ]
            else begin
              incr count;
              let ws =
                Op.mk Op.OmpWsloop ~operands
                  ~regions:
                    [| Op.region ~args (pures @ b.Op.regions.(0).body) |]
              in
              [ Op.mk Op.OmpParallel
                  ~regions:[| Op.region [ ws ] |]
                  ~attrs:[ ("dims", Op.Aint (ng + nb)) ]
              ]
            end
          | _ -> [ op ]
        end
        | None -> [ op ]
      end
      | _ -> [ op ]
    end
    | _ -> [ op ]
  in
  (match visit m with [ _ ] -> () | _ -> ());
  !count

(* --- fusion (Fig. 10) --- *)

(* Ops that may hoist above an omp.parallel run: pure scalar ops and fresh
   allocations (the caches produced by barrier fission sit between the
   fissioned loops). *)
let movable (op : Op.op) =
  is_pure op
  || match op.kind with Op.Alloc | Op.Alloca -> true | _ -> false

(* In every region body: hoist movable ops out of runs of omp.parallel
   ops, then merge each run into one region with omp.barrier
   separators. *)
let fuse (m : Op.op) : int =
  let count = ref 0 in
  let rec fuse_body (ops : Op.op list) : Op.op list =
    match ops with
    | [] -> []
    | ({ Op.kind = Op.OmpParallel; _ } as first) :: rest ->
      (* accumulate the run *)
      let rec take_run pures pars = function
        | ({ Op.kind = Op.OmpParallel; _ } as p) :: tl ->
          take_run pures (p :: pars) tl
        | (p : Op.op) :: tl when movable p ->
          (* a movable op between parallels: shift it before the run *)
          take_run (p :: pures) pars tl
        | tl -> (List.rev pures, List.rev pars, tl)
      in
      let pures, pars, tl = take_run [] [ first ] rest in
      if List.length pars <= 1 then
        (* no fusion opportunity; restore original order *)
        (first :: List.rev pures) @ fuse_body tl
      else begin
        count := !count + List.length pars - 1;
        let merged_body =
          List.concat
            (List.mapi
               (fun i (p : Op.op) ->
                 let body = p.Op.regions.(0).Op.body in
                 if i = 0 then body else Builder.omp_barrier () :: body)
               pars)
        in
        let fused =
          Op.mk Op.OmpParallel ~regions:[| Op.region merged_body |]
            ~attrs:first.Op.attrs
        in
        pures @ [ fused ] @ fuse_body tl
      end
    | op :: rest -> op :: fuse_body rest
  in
  let rec visit (op : Op.op) =
    Array.iter
      (fun (r : Op.region) ->
        r.body <- fuse_body r.body;
        List.iter visit r.body)
      op.regions
  in
  visit m;
  !count

(* --- hoisting (Fig. 11) --- *)

(* for { pures...; omp.parallel { X } }   ==>
   omp.parallel { for { pures; X; omp.barrier } }

   Pure ops execute redundantly in every thread, which is legal; the
   barrier joins the team between iterations. *)
let hoist (m : Op.op) : int =
  let count = ref 0 in
  let rec visit (op : Op.op) : Op.op list =
    Array.iter
      (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
      op.regions;
    match op.kind with
    | Op.For -> begin
      let body = op.regions.(0).body in
      let rec split pures = function
        | [ ({ Op.kind = Op.OmpParallel; _ } as p) ] ->
          Some (List.rev pures, p)
        | (x : Op.op) :: rest when is_pure x -> split (x :: pures) rest
        | _ -> None
      in
      match split [] body with
      | Some (pures, p) ->
        incr count;
        let inner_body =
          pures @ p.Op.regions.(0).Op.body @ [ Builder.omp_barrier () ]
        in
        let new_for =
          Op.mk Op.For ~operands:op.operands
            ~regions:[| Op.region ~args:op.regions.(0).rargs inner_body |]
        in
        [ Op.mk Op.OmpParallel
            ~regions:[| Op.region [ new_for ] |]
            ~attrs:p.Op.attrs
        ]
      | None -> [ op ]
    end
    | _ -> [ op ]
  in
  (match visit m with [ _ ] -> () | _ -> ());
  !count

(* --- statistics + driver --- *)

type report =
  { serialized : int
  ; collapsed : int
  ; fused : int
  ; hoisted : int
  }

let run ?(options = default_options) (m : Op.op) : report =
  (match lower_all m with [ _ ] -> () | _ -> ());
  let collapsed = if options.collapse then collapse m else 0 in
  let serialized =
    match options.inner with
    | Inner_serial -> serialize_nested m
    | Inner_parallel -> 0
  in
  let fused = if options.fuse then fuse m else 0 in
  let hoisted = if options.hoist then hoist m else 0 in
  (* hoisting can expose new fusion opportunities and vice versa *)
  let fused = fused + if options.fuse then fuse m else 0 in
  { serialized; collapsed; fused; hoisted }
