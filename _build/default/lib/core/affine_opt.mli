(** The "affine" ablation of Fig. 13: full unrolling of small
    constant-trip loops that contain synchronization, which turns in-loop
    barriers into straight-line ones and lets per-iteration
    transcendentals ([powf(2,i)]) constant-fold. *)

(** Returns the number of loops unrolled. *)
val run : Ir.Op.op -> int
