(** Loop-invariant code motion: the classical serial rule for [scf.for],
    and the paper's lock-step rule for parallel loops (Sec. IV-C) — an
    op hoists when its operands are invariant and only PRIOR ops in the
    body conflict with it, which is what turns Fig. 1's O(N^2) normalize
    into O(N). *)

(** Runs to fixpoint; returns the number of ops moved. *)
val run : Ir.Op.op -> int
