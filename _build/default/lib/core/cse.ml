(* Common sub-expression elimination, scope-aware.

   Pure ops with identical (kind, operands, attrs) unify within a
   dominating scope (our region nesting gives dominance directly: an op
   dominates everything later in its region and inside later ops'
   regions).  Loads participate keyed by a per-base memory epoch that is
   bumped by potentially-conflicting writes; barriers bump every epoch
   except thread-private allocations — the precise cross-barrier cases are
   left to the forwarding pass (Mem2reg), which uses the full barrier
   memory semantics. *)

open Ir
open Analysis

type key =
  { k_kind : string
  ; k_operands : int list
  ; k_epoch : int
  }

let key_of ~epoch (op : Op.op) : key =
  let kind_str =
    match op.kind with
    | Op.Binop b -> "b:" ^ Op.binop_to_string b
    | Op.Cmp c -> "c:" ^ Op.cmp_to_string c
    | Op.Select -> "sel"
    | Op.Cast d -> "cast:" ^ Types.dtype_to_string d
    | Op.Math m -> "m:" ^ Op.math_to_string m
    | Op.Constant (Op.Cint (n, d)) ->
      Printf.sprintf "ci:%d:%s" n (Types.dtype_to_string d)
    | Op.Constant (Op.Cfloat (f, d)) ->
      Printf.sprintf "cf:%h:%s" f (Types.dtype_to_string d)
    | Op.Dim i -> Printf.sprintf "dim:%d" i
    | Op.Load -> "load"
    | _ -> assert false
  in
  { k_kind = kind_str
  ; k_operands = Array.to_list (Array.map (fun (v : Value.t) -> v.id) op.operands)
  ; k_epoch = epoch
  }

type st =
  { mutable scopes : (key, Value.t) Hashtbl.t list
  ; subst : Clone.subst
  ; mutable epoch : int (* bumped by writes, calls AND barriers *)
  ; mutable private_epoch : int (* bumped by writes and calls only: loads
                                   of thread-private allocations survive
                                   barriers but not same-thread stores *)
  ; info : Info.t
  }

let find st k =
  let rec go = function
    | [] -> None
    | s :: rest -> begin
      match Hashtbl.find_opt s k with
      | Some v -> Some v
      | None -> go rest
    end
  in
  go st.scopes

let record st k v =
  match st.scopes with
  | s :: _ -> Hashtbl.replace s k v
  | [] -> ()

let in_scope st f =
  st.scopes <- Hashtbl.create 32 :: st.scopes;
  let saved_epoch = st.epoch in
  f ();
  (* memory written inside the scope stays written *)
  ignore saved_epoch;
  st.scopes <- List.tl st.scopes

(* Is this load from a thread-private allocation (alloca/alloc defined
   inside the nearest enclosing block-parallel)?  Used to let loads of
   locals survive barrier epochs. *)
let thread_private st (base : Value.t) : bool =
  match Info.defining_op st.info base with
  | Some ({ Op.kind = Op.Alloc | Op.Alloca; _ } as def) -> begin
    (* private if no block-parallel encloses... conservative: private when
       the alloc's nearest parallel ancestor is a Block parallel, i.e. the
       buffer is created per-thread. *)
    let rec nearest_par (o : Op.op) =
      match Info.parent st.info o with
      | None -> None
      | Some p -> begin
        match p.Op.kind with
        | Op.Parallel k -> Some k
        | _ -> nearest_par p
      end
    in
    nearest_par def = Some Op.Block
  end
  | _ -> false

let pure_cseable (op : Op.op) =
  match op.kind with
  | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Constant _ | Op.Dim _ ->
    true
  | _ -> false

let rec visit st (op : Op.op) : Op.op list =
  op.operands <- Array.map (Clone.lookup st.subst) op.operands;
  if pure_cseable op then begin
    let k = key_of ~epoch:0 op in
    match find st k with
    | Some v ->
      Clone.add_subst st.subst ~from:(Op.result op) ~to_:v;
      []
    | None ->
      record st k (Op.result op);
      [ op ]
  end
  else begin
    match op.kind with
    | Op.Load ->
      let epoch =
        if thread_private st op.operands.(0) then st.private_epoch
        else st.epoch
      in
      let k = key_of ~epoch op in
      begin
        match find st k with
        | Some v ->
          Clone.add_subst st.subst ~from:(Op.result op) ~to_:v;
          []
        | None ->
          record st k (Op.result op);
          [ op ]
      end
    | Op.Store | Op.Copy | Op.Call _ | Op.Dealloc ->
      st.epoch <- st.epoch + 1;
      st.private_epoch <- st.private_epoch + 1;
      [ op ]
    | Op.Barrier | Op.OmpBarrier ->
      st.epoch <- st.epoch + 1;
      [ op ]
    | Op.Func _ | Op.Module ->
      (* isolate scopes: SSA values never cross function boundaries *)
      let saved = st.scopes in
      st.scopes <- [ Hashtbl.create 64 ];
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map (visit st) r.body)
        op.regions;
      st.scopes <- saved;
      [ op ]
    | _ ->
      let has_writes =
        Op.exists
          (fun o ->
            match o.Op.kind with
            | Op.Store | Op.Copy | Op.Call _ | Op.Dealloc | Op.Barrier
            | Op.OmpBarrier ->
              true
            | _ -> false)
          op
      in
      let repeats =
        match op.kind with
        | Op.For | Op.While | Op.Parallel _ | Op.OmpWsloop | Op.OmpParallel ->
          true
        | _ -> false
      in
      (* loop-carried invalidation: a store in a later iteration may feed
         a load CSE'd in an earlier one — bump before entering the body *)
      if has_writes && repeats then begin
        st.epoch <- st.epoch + 1;
        st.private_epoch <- st.private_epoch + 1
      end;
      Array.iter
        (fun (r : Op.region) ->
          in_scope st (fun () -> r.body <- List.concat_map (visit st) r.body))
        op.regions;
      if has_writes then begin
        st.epoch <- st.epoch + 1;
        st.private_epoch <- st.private_epoch + 1
      end;
      [ op ]
  end

let run (m : Op.op) : unit =
  let st =
    { scopes = [ Hashtbl.create 64 ]
    ; subst = Clone.create_subst ()
    ; epoch = 1
    ; private_epoch = 1
    ; info = Info.build m
    }
  in
  (match visit st m with [ _ ] -> () | _ -> ())
