(* Canonicalization: constant folding, algebraic identities, constant
   control-flow simplification and dead pure-op elimination.

   These are deliberately *generic* transformations: the point of the
   paper's barrier semantics is that such passes keep working unmodified
   in the presence of [polygeist.barrier] — nothing here special-cases
   synchronization. *)

open Ir

type const_val =
  | Ci of int
  | Cf of float

(* The walking state: known constants and a value substitution. *)
type st =
  { consts : const_val Value.Tbl.t
  ; subst : Clone.subst
  }

let new_st () = { consts = Value.Tbl.create 64; subst = Clone.create_subst () }

let const_of st (v : Value.t) = Value.Tbl.find_opt st.consts v

let fold_binop kind (a : const_val) (b : const_val) : const_val option =
  match a, b with
  | Ci x, Ci y -> begin
    match kind with
    | Op.Add -> Some (Ci (x + y))
    | Op.Sub -> Some (Ci (x - y))
    | Op.Mul -> Some (Ci (x * y))
    | Op.Div -> if y = 0 then None else Some (Ci (x / y))
    | Op.Rem -> if y = 0 then None else Some (Ci (x mod y))
    | Op.Min -> Some (Ci (min x y))
    | Op.Max -> Some (Ci (max x y))
    | Op.And -> Some (Ci (x land y))
    | Op.Or -> Some (Ci (x lor y))
    | Op.Xor -> Some (Ci (x lxor y))
    | Op.Shl -> Some (Ci (x lsl y))
    | Op.Shr -> Some (Ci (x asr y))
  end
  | Cf x, Cf y -> begin
    match kind with
    | Op.Add -> Some (Cf (x +. y))
    | Op.Sub -> Some (Cf (x -. y))
    | Op.Mul -> Some (Cf (x *. y))
    | Op.Div -> Some (Cf (x /. y))
    | Op.Min -> Some (Cf (Float.min x y))
    | Op.Max -> Some (Cf (Float.max x y))
    | Op.Rem | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr -> None
  end
  | _ -> None

let fold_cmp pred (a : const_val) (b : const_val) : bool option =
  let cmp c = Some c in
  match a, b with
  | Ci x, Ci y -> begin
    match pred with
    | Op.Eq -> cmp (x = y)
    | Op.Ne -> cmp (x <> y)
    | Op.Lt -> cmp (x < y)
    | Op.Le -> cmp (x <= y)
    | Op.Gt -> cmp (x > y)
    | Op.Ge -> cmp (x >= y)
  end
  | Cf x, Cf y -> begin
    match pred with
    | Op.Eq -> cmp (x = y)
    | Op.Ne -> cmp (x <> y)
    | Op.Lt -> cmp (x < y)
    | Op.Le -> cmp (x <= y)
    | Op.Gt -> cmp (x > y)
    | Op.Ge -> cmp (x >= y)
  end
  | _ -> None

let result_dtype (op : Op.op) =
  match (Op.result op).typ with
  | Types.Scalar d -> d
  | Types.Memref _ -> Types.Index

(* Replace op's single result by [v] everywhere downstream. *)
let replace_with st (op : Op.op) (v : Value.t) : Op.op list =
  Clone.add_subst st.subst ~from:(Op.result op) ~to_:v;
  (match Value.Tbl.find_opt st.consts v with
   | Some c -> Value.Tbl.replace st.consts (Op.result op) c
   | None -> ());
  []

let materialize_const st (op : Op.op) (c : const_val) : Op.op list =
  let d = result_dtype op in
  let k =
    match c with
    | Ci n -> Builder.const_int ~dtype:d n
    | Cf f -> Builder.const_float ~dtype:d f
  in
  Value.Tbl.replace st.consts (Op.result k) c;
  Clone.add_subst st.subst ~from:(Op.result op) ~to_:(Op.result k);
  [ k ]

(* One canonicalization step for one op (operands already substituted). *)
let simplify_op st (op : Op.op) : Op.op list =
  match op.kind with
  | Op.Constant (Op.Cint (n, _)) ->
    Value.Tbl.replace st.consts (Op.result op) (Ci n);
    [ op ]
  | Op.Constant (Op.Cfloat (f, _)) ->
    Value.Tbl.replace st.consts (Op.result op) (Cf f);
    [ op ]
  | Op.Binop kind -> begin
    let a = op.operands.(0) and b = op.operands.(1) in
    match const_of st a, const_of st b with
    | Some ca, Some cb -> begin
      match fold_binop kind ca cb with
      | Some c -> materialize_const st op c
      | None -> [ op ]
    end
    | ca, cb -> begin
      (* algebraic identities *)
      let is0 = function Some (Ci 0) | Some (Cf 0.0) -> true | _ -> false in
      let is1 = function Some (Ci 1) | Some (Cf 1.0) -> true | _ -> false in
      match kind with
      | Op.Add when is0 ca -> replace_with st op b
      | Op.Add when is0 cb -> replace_with st op a
      | Op.Sub when is0 cb -> replace_with st op a
      | Op.Mul when is1 ca -> replace_with st op b
      | Op.Mul when is1 cb -> replace_with st op a
      | (Op.Mul | Op.And) when is0 ca && not (Types.is_float_dtype (result_dtype op)) ->
        replace_with st op a
      | (Op.Mul | Op.And) when is0 cb && not (Types.is_float_dtype (result_dtype op)) ->
        replace_with st op b
      | Op.Div when is1 cb -> replace_with st op a
      | (Op.Or | Op.Xor | Op.Shl | Op.Shr) when is0 cb -> replace_with st op a
      | Op.Sub when Value.equal a b && not (Types.is_float_dtype (result_dtype op)) ->
        materialize_const st op (Ci 0)
      | _ -> [ op ]
    end
  end
  | Op.Cmp pred -> begin
    match const_of st op.operands.(0), const_of st op.operands.(1) with
    | Some ca, Some cb -> begin
      match fold_cmp pred ca cb with
      | Some c -> materialize_const st op (Ci (if c then 1 else 0))
      | None -> [ op ]
    end
    | _ ->
      if Value.equal op.operands.(0) op.operands.(1) then begin
        match pred with
        | Op.Eq | Op.Le | Op.Ge -> materialize_const st op (Ci 1)
        | Op.Ne | Op.Lt | Op.Gt -> materialize_const st op (Ci 0)
      end
      else [ op ]
  end
  | Op.Select -> begin
    match const_of st op.operands.(0) with
    | Some (Ci 0) -> replace_with st op op.operands.(2)
    | Some (Ci _) -> replace_with st op op.operands.(1)
    | _ ->
      if Value.equal op.operands.(1) op.operands.(2) then
        replace_with st op op.operands.(1)
      else [ op ]
  end
  | Op.Cast d -> begin
    let src = op.operands.(0) in
    let same =
      match src.typ with
      | Types.Scalar s ->
        s = d
        || (Types.is_int_dtype s && Types.is_int_dtype d && d <> Types.I1
            && s <> Types.I1)
      | Types.Memref _ -> false
    in
    if same then replace_with st op src
    else begin
      match const_of st src with
      | Some (Ci n) when Types.is_float_dtype d -> materialize_const st op (Cf (float_of_int n))
      | Some (Ci n) when d = Types.I1 -> materialize_const st op (Ci (if n <> 0 then 1 else 0))
      | Some (Ci n) -> materialize_const st op (Ci n)
      | Some (Cf f) when not (Types.is_float_dtype d) ->
        materialize_const st op (Ci (int_of_float f))
      | Some (Cf f) when d = Types.F32 ->
        materialize_const st op (Cf (Int32.float_of_bits (Int32.bits_of_float f)))
      | _ -> [ op ]
    end
  end
  | Op.Math fn -> begin
    match Array.to_list (Array.map (const_of st) op.operands) with
    | [ Some (Cf x) ] -> begin
      let r =
        match fn with
        | Op.Sqrt -> Some (sqrt x)
        | Op.Exp -> Some (exp x)
        | Op.Log -> Some (log x)
        | Op.Log2 -> Some (log x /. log 2.0)
        | Op.Fabs -> Some (Float.abs x)
        | Op.Floor -> Some (Float.floor x)
        | Op.Neg -> Some (-.x)
        | Op.Sin -> Some (sin x)
        | Op.Cos -> Some (cos x)
        | Op.Tanh -> Some (tanh x)
        | Op.Not | Op.Erf | Op.Pow -> None
      in
      match r with
      | Some f -> materialize_const st op (Cf f)
      | None -> [ op ]
    end
    | [ Some (Cf x); Some (Cf y) ] when fn = Op.Pow ->
      materialize_const st op (Cf (Float.pow x y))
    | _ -> [ op ]
  end
  | Op.If -> begin
    match const_of st op.operands.(0) with
    | Some (Ci 0) -> op.regions.(1).body
    | Some (Ci _) -> op.regions.(0).body
    | _ ->
      if op.regions.(0).body = [] && op.regions.(1).body = [] then []
      else [ op ]
  end
  | Op.For -> begin
    match const_of st (Op.for_lo op), const_of st (Op.for_hi op) with
    | Some (Ci lo), Some (Ci hi) when lo >= hi -> []
    | _ -> [ op ]
  end
  | _ -> [ op ]

(* Apply the substitution to an op's operands in place. *)
let apply_subst st (op : Op.op) =
  op.operands <- Array.map (Clone.lookup st.subst) op.operands

let rec walk st (op : Op.op) : Op.op list =
  apply_subst st op;
  (* top-down so region bodies see outer constants *)
  match simplify_op st op with
  | [ o ] when o == op ->
    Array.iter
      (fun (r : Op.region) -> r.body <- List.concat_map (walk st) r.body)
      op.regions;
    [ op ]
  | others ->
    (* the op was replaced (e.g. an scf.if inlined its taken branch):
       the replacement ops have not been visited yet *)
    List.concat_map (walk st) others

(* --- dead code elimination --- *)

let is_pure (op : Op.op) =
  match op.kind with
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Dim _ ->
    true
  | _ -> false

let count_uses (root : Op.op) : int Value.Tbl.t =
  let uses = Value.Tbl.create 256 in
  Op.iter
    (fun o ->
      Array.iter
        (fun v ->
          Value.Tbl.replace uses v
            (1 + Option.value ~default:0 (Value.Tbl.find_opt uses v)))
        o.Op.operands)
    root;
  uses

let dce (root : Op.op) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let uses = count_uses root in
    let used v = Value.Tbl.mem uses v in
    let removed = ref false in
    let rec clean (op : Op.op) : Op.op list =
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map clean r.body)
        op.Op.regions;
      if is_pure op && not (Array.exists used op.results) then begin
        removed := true;
        []
      end
      else [ op ]
    in
    (match clean root with
     | [ _ ] -> ()
     | _ -> ());
    if !removed then changed := true else continue_ := false
  done;
  !changed

let run (m : Op.op) : unit =
  let st = new_st () in
  (match walk st m with [ _ ] -> () | _ -> ());
  ignore (dce m)
