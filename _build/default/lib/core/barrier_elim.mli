(** Barrier elimination and motion (Sec. IV-A): a barrier is redundant
    when its before/after interval effect sets contain no cross-thread
    conflict beyond read-after-read.  Barriers are removed one at a time
    with re-analysis (two independently-redundant barriers may each rely
    on the other). *)

(** Returns the number of barriers eliminated. *)
val run : Ir.Op.op -> int

(** Motion in hoisting form: a barrier leading an [if] body moves before
    the [if] when the speculative placement subsumes it.  Returns the
    number moved. *)
val hoist_edge_barriers : Ir.Op.op -> int

val redundant : Analysis.Effects.ctx -> par:Ir.Op.op -> Ir.Op.op -> bool
