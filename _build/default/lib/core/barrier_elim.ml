(* Barrier elimination and motion (Sec. IV-A).

   Given a barrier B, let M_before be the union of memory effects before B
   up to the previous barrier or the start of the parallel region, and
   M_after the union after B up to the next barrier or the region end.  B
   is redundant when (M_before ∩ M_after) \ RAR contains no cross-thread
   conflict — every remaining ordering requirement is within a single
   thread, where program order already provides it.

   Barrier motion reuses the same query: a barrier may move to a new
   position when a barrier at the new position would make the original one
   redundant.  We use motion in its hoisting form: a barrier that is the
   first (or last) op of a control-flow construct moves just outside it,
   which often unlocks parallel loop splitting without interchange. *)

open Ir
open Analysis

let rec nearest_block_par (info : Info.t) (op : Op.op) : Op.op option =
  match Info.parent info op with
  | None -> None
  | Some p -> begin
    match p.Op.kind with
    | Op.Parallel Op.Block -> Some p
    | _ -> nearest_block_par info p
  end

(* Is this barrier redundant per the interval-effect criterion? *)
let redundant (ctx : Effects.ctx) ~(par : Op.op) (barrier : Op.op) : bool =
  let before, after = Effects.barrier_intervals ctx ~par barrier in
  not (Effects.conflicts_cross ctx before after)

let run (m : Op.op) : int =
  let eliminated = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let info = Info.build m in
    (* Collect all barriers with their parallel context. *)
    let barriers = ref [] in
    Op.iter
      (fun (o : Op.op) ->
        if o.Op.kind = Op.Barrier then begin
          match nearest_block_par info o with
          | Some par -> barriers := (o, par) :: !barriers
          | None -> ()
        end)
      m;
    (* Decide redundancy on the unmodified tree, then delete. *)
    let doomed =
      List.filter_map
        (fun (b, par) ->
          let ctx = Effects.make_ctx ~modul:m ~par info in
          if redundant ctx ~par b then Some b.Op.oid else None)
        !barriers
    in
    (* Deleting one barrier extends its neighbours' intervals, which can
       only *grow* their effect sets; removing several independently-
       redundant barriers at once could be unsound (each proof assumed the
       other barrier still cuts the interval).  Delete only the first and
       re-analyze. *)
    match doomed with
    | [] -> ()
    | oid :: _ ->
      let rec clean (op : Op.op) : Op.op list =
        Array.iter
          (fun (r : Op.region) -> r.body <- List.concat_map clean r.body)
          op.Op.regions;
        if op.Op.oid = oid then [] else [ op ]
      in
      (match clean m with [ _ ] -> () | _ -> ());
      incr eliminated;
      changed := true
  done;
  !eliminated

(* --- barrier motion (hoisting out of an if/for when at the edge) --- *)

(* A barrier that is the first op of an [if] body can move before the if
   when doing so preserves semantics: the moved barrier at the new
   position must subsume the old one.  We check it with the redundancy
   query on a speculative copy: insert a barrier before the construct and
   test whether the original becomes redundant. *)
let hoist_edge_barriers (m : Op.op) : int =
  let moved = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let info = Info.build m in
    (* Hoist from one region body: find an [if] whose then-branch starts
       with a barrier (else empty); speculatively place a barrier before
       the if; commit if the original becomes redundant. *)
    let try_hoist (r : Op.region) : bool =
      let rec go prefix = function
        | [] -> false
        | (ifop : Op.op) :: rest
          when ifop.Op.kind = Op.If
               && (match ifop.Op.regions.(0).body with
                   | { Op.kind = Op.Barrier; _ } :: _ -> true
                   | _ -> false)
               && ifop.Op.regions.(1).body = [] -> begin
          match nearest_block_par info ifop with
          | None -> go (ifop :: prefix) rest
          | Some par ->
            let nb = Builder.barrier () in
            let saved = r.body in
            r.body <- List.rev_append prefix (nb :: ifop :: rest);
            let ctx = Effects.make_ctx ~modul:m ~par (Info.build m) in
            let original = List.hd ifop.Op.regions.(0).body in
            if redundant ctx ~par original then begin
              ifop.Op.regions.(0).body <- List.tl ifop.Op.regions.(0).body;
              true
            end
            else begin
              r.body <- saved;
              go (ifop :: prefix) rest
            end
        end
        | op :: rest -> go (op :: prefix) rest
      in
      go [] r.body
    in
    let rec visit (op : Op.op) =
      Array.iter
        (fun (r : Op.region) ->
          if try_hoist r then begin
            incr moved;
            changed := true
          end;
          List.iter visit r.body)
        op.Op.regions
    in
    visit m
  done;
  !moved
