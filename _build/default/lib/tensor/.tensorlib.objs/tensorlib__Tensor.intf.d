lib/tensor/tensor.mli:
