lib/tensor/conv.ml: Array Float Gemm Opcost Runtime Tensor
