lib/tensor/gemm.ml: Array Float Opcost Tensor
