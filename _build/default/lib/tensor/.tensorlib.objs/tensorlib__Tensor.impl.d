lib/tensor/tensor.ml: Array Float
