lib/tensor/layers.ml: Array Float Gemm Opcost Tensor
