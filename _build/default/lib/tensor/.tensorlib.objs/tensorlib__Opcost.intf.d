lib/tensor/opcost.mli: Runtime
