lib/tensor/opcost.ml: Float Runtime
