(* Cost descriptors for tensor operations.

   Each backend reports how much work an op does and how it touches
   memory; the machine model turns that into simulated wall time:

   - [vflops] at the machine's vectorized rate (hand-tuned kernels such
     as GEMM use the full SIMD width);
   - [sflops] at the scalar rate (naive loop nests, per-row softmax);
   - [stream_bytes]: sequential, prefetchable traffic charged against the
     machine's *total* bandwidth — this is where HBM machines shine;
   - [latency_bytes]: cache/latency-bound traffic charged at the per-core
     byte cost — blocking tuned for large caches produces this kind of
     access, which cannot exploit HBM (the paper's oneDNN-on-A64FX
     observation);
   - [launches]: kernel-launch / parallel-region entries. *)

type t =
  { vflops : float
  ; sflops : float
  ; stream_bytes : float
  ; latency_bytes : float
  ; launches : int
  }

let zero =
  { vflops = 0.0; sflops = 0.0; stream_bytes = 0.0; latency_bytes = 0.0
  ; launches = 0
  }

let ( ++ ) a b =
  { vflops = a.vflops +. b.vflops
  ; sflops = a.sflops +. b.sflops
  ; stream_bytes = a.stream_bytes +. b.stream_bytes
  ; latency_bytes = a.latency_bytes +. b.latency_bytes
  ; launches = a.launches + b.launches
  }

(* Force all arithmetic to the scalar rate (the native PyTorch CPU
   backend's unvectorized kernels). *)
let scalarize (c : t) = { c with vflops = 0.0; sflops = c.sflops +. c.vflops }

(* Simulated seconds on [machine] with [threads] worker threads. *)
let seconds (machine : Runtime.Machine.t) ~(threads : int) (c : t) : float =
  let ns = 1e-9 in
  let t = float_of_int (max 1 (min threads machine.cores)) in
  let flop_time =
    (c.vflops *. machine.flop_ns /. float_of_int machine.simd_width)
    +. (c.sflops *. machine.flop_ns)
  in
  let compute = flop_time *. ns /. t in
  let stream = c.stream_bytes /. (machine.bandwidth_gbs *. 1e9) in
  let stream_floor = c.stream_bytes *. machine.mem_ns_per_byte *. ns /. t in
  let latency = c.latency_bytes *. machine.mem_ns_per_byte *. ns /. t in
  let overhead = float_of_int c.launches *. machine.spawn_ns *. ns in
  Float.max compute (Float.max stream stream_floor) +. latency +. overhead
