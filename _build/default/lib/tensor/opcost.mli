(** Cost descriptors for tensor operations: vectorized and scalar flops,
    streaming traffic (charged against total machine bandwidth — where
    HBM machines shine), latency-bound traffic (charged at the per-core
    byte cost — cache-blocked access that cannot exploit HBM), and
    kernel-launch overheads. *)

type t =
  { vflops : float
  ; sflops : float
  ; stream_bytes : float
  ; latency_bytes : float
  ; launches : int
  }

val zero : t
val ( ++ ) : t -> t -> t

(** Force all arithmetic to the scalar rate (the native PyTorch CPU
    backend's unvectorized kernels). *)
val scalarize : t -> t

(** Simulated wall seconds on the machine with the given thread count. *)
val seconds : Runtime.Machine.t -> threads:int -> t -> float
