(* Dense float tensors in NCHW layout — the data substrate for MocCUDA's
   cuDNN re-implementations. *)

type t =
  { data : float array
  ; shape : int array
  }

let numel (t : t) = Array.length t.data

let create shape =
  let n = Array.fold_left ( * ) 1 shape in
  { data = Array.make n 0.0; shape }

let of_array shape data =
  assert (Array.fold_left ( * ) 1 shape = Array.length data);
  { data; shape }

let init shape f =
  let t = create shape in
  Array.iteri (fun i _ -> t.data.(i) <- f i) t.data;
  t

let rand seed shape =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  init shape (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0) -. 0.5)

let copy (t : t) = { data = Array.copy t.data; shape = Array.copy t.shape }

let fill (t : t) v = Array.fill t.data 0 (Array.length t.data) v

(* 4-D accessors (N, C, H, W) *)
let idx4 (t : t) n c h w =
  let sc = t.shape.(1) and sh = t.shape.(2) and sw = t.shape.(3) in
  ((((n * sc) + c) * sh) + h) * sw + w

let get4 t n c h w = t.data.(idx4 t n c h w)
let set4 t n c h w v = t.data.(idx4 t n c h w) <- v

(* 2-D accessors *)
let idx2 (t : t) i j = (i * t.shape.(1)) + j
let get2 t i j = t.data.(idx2 t i j)
let set2 t i j v = t.data.(idx2 t i j) <- v

let map2_inplace f (a : t) (b : t) =
  assert (numel a = numel b);
  Array.iteri (fun i x -> a.data.(i) <- f x b.data.(i)) a.data

let add_inplace a b = map2_inplace ( +. ) a b

let max_abs_diff (a : t) (b : t) =
  assert (numel a = numel b);
  let m = ref 0.0 in
  Array.iteri
    (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i))))
    a.data;
  !m

let sum (t : t) = Array.fold_left ( +. ) 0.0 t.data

let bytes (t : t) = 4 * numel t
