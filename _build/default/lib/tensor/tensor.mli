(** Dense float tensors in NCHW layout — the data substrate for MocCUDA's
    cuDNN re-implementations. *)

type t =
  { data : float array
  ; shape : int array
  }

val numel : t -> int
val create : int array -> t
val of_array : int array -> float array -> t
val init : int array -> (int -> float) -> t

(** Deterministic pseudo-random values in [-0.5, 0.5). *)
val rand : int -> int array -> t

val copy : t -> t
val fill : t -> float -> unit
val idx4 : t -> int -> int -> int -> int -> int
val get4 : t -> int -> int -> int -> int -> float
val set4 : t -> int -> int -> int -> int -> float -> unit
val idx2 : t -> int -> int -> int
val get2 : t -> int -> int -> float
val set2 : t -> int -> int -> float -> unit
val map2_inplace : (float -> float -> float) -> t -> t -> unit
val add_inplace : t -> t -> unit
val max_abs_diff : t -> t -> float
val sum : t -> float
val bytes : t -> int
