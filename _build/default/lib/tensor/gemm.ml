(* SGEMM: C := A(mxk) * B(kxn) + C, naive and cache-blocked variants.
   The blocked variant is the compute kernel behind MocCUDA's
   im2col+GEMM convolutions. *)

let naive ~(a : Tensor.t) ~(b : Tensor.t) ~(c : Tensor.t) =
  let m = a.Tensor.shape.(0) and k = a.Tensor.shape.(1) in
  let n = b.Tensor.shape.(1) in
  assert (b.Tensor.shape.(0) = k && c.Tensor.shape.(0) = m
          && c.Tensor.shape.(1) = n);
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (Tensor.get2 c i j) in
      for l = 0 to k - 1 do
        acc := !acc +. (Tensor.get2 a i l *. Tensor.get2 b l j)
      done;
      Tensor.set2 c i j !acc
    done
  done

(* Blocked with a fixed 32x32x32 tile; identical results up to float
   associativity (we keep the k-loop innermost and in order, so results
   are bitwise equal to naive). *)
let blocked ?(tile = 32) ~(a : Tensor.t) ~(b : Tensor.t) ~(c : Tensor.t) () =
  let m = a.Tensor.shape.(0) and k = a.Tensor.shape.(1) in
  let n = b.Tensor.shape.(1) in
  let i0 = ref 0 in
  while !i0 < m do
    let imax = min m (!i0 + tile) in
    let j0 = ref 0 in
    while !j0 < n do
      let jmax = min n (!j0 + tile) in
      for i = !i0 to imax - 1 do
        for j = !j0 to jmax - 1 do
          let acc = ref (Tensor.get2 c i j) in
          for l = 0 to k - 1 do
            acc := !acc +. (Tensor.get2 a i l *. Tensor.get2 b l j)
          done;
          Tensor.set2 c i j !acc
        done
      done;
      j0 := !j0 + tile
    done;
    i0 := !i0 + tile
  done

(* Cost of a blocked, vectorized GEMM: 2mnk flops; streaming traffic of
   the three matrices once per cache-resident tile pass. *)
let cost ~(m : int) ~(n : int) ~(k : int) : Opcost.t =
  let f = float_of_int in
  let passes = Float.max 1.0 (f k /. 256.0) in
  { Opcost.vflops = 2.0 *. f m *. f n *. f k
  ; sflops = 0.0
  ; stream_bytes = 4.0 *. ((f m *. f k) +. (f k *. f n) +. (passes *. f m *. f n))
  ; latency_bytes = 0.0
  ; launches = 1
  }
