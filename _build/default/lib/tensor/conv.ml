(* 2-D convolution, NCHW, three implementations mirroring the backends the
   paper compares on the PyTorch workload:

   - [naive]:  the "native" PyTorch CPU fallback — six nested loops, no
     blocking, scalar arithmetic, latency-bound memory behaviour.
   - [direct]: a oneDNN-style cache-blocked direct convolution —
     vectorized, with memory traffic proportional to how badly the
     working set overflows the last-level cache.  Tuned for commodity
     cache hierarchies; its access pattern cannot exploit HBM.
   - [im2col_gemm]: MocCUDA's HBM-friendly lowering — materialize the
     patch matrix (streaming writes), then one big vectorized GEMM.

   All three produce identical results (same accumulation order), so the
   backends are differentially testable. *)

type params =
  { stride : int
  ; pad : int
  }

type shape =
  { n : int (* batch *)
  ; c : int (* input channels *)
  ; h : int
  ; w : int
  ; k : int (* output channels *)
  ; r : int (* kernel height *)
  ; s : int (* kernel width *)
  ; p : params
  }

let out_dims (sh : shape) =
  let oh = ((sh.h + (2 * sh.p.pad) - sh.r) / sh.p.stride) + 1 in
  let ow = ((sh.w + (2 * sh.p.pad) - sh.s) / sh.p.stride) + 1 in
  (oh, ow)

let shape_of_tensors ~(input : Tensor.t) ~(weight : Tensor.t) ~(p : params) :
  shape =
  { n = input.Tensor.shape.(0)
  ; c = input.Tensor.shape.(1)
  ; h = input.Tensor.shape.(2)
  ; w = input.Tensor.shape.(3)
  ; k = weight.Tensor.shape.(0)
  ; r = weight.Tensor.shape.(2)
  ; s = weight.Tensor.shape.(3)
  ; p
  }

(* --- forward implementations --- *)

let naive ~(input : Tensor.t) ~(weight : Tensor.t) ~(p : params) : Tensor.t =
  let sh = shape_of_tensors ~input ~weight ~p in
  let oh, ow = out_dims sh in
  let out = Tensor.create [| sh.n; sh.k; oh; ow |] in
  for n = 0 to sh.n - 1 do
    for k = 0 to sh.k - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let acc = ref 0.0 in
          for c = 0 to sh.c - 1 do
            for r = 0 to sh.r - 1 do
              for s = 0 to sh.s - 1 do
                let iy = (y * p.stride) + r - p.pad in
                let ix = (x * p.stride) + s - p.pad in
                if iy >= 0 && iy < sh.h && ix >= 0 && ix < sh.w then
                  acc :=
                    !acc
                    +. Tensor.get4 input n c iy ix
                       *. Tensor.get4 weight k c r s
              done
            done
          done;
          Tensor.set4 out n k y x !acc
        done
      done
    done
  done;
  out

(* Direct convolution keeps the same loop order per output element, so the
   result matches [naive]; it differs only in traversal blocking (modelled
   in the cost, not re-implemented — the numerics are the point here). *)
let direct = naive

(* im2col: patches matrix of shape (C*R*S) x (N*OH*OW) *)
let im2col ~(input : Tensor.t) (sh : shape) : Tensor.t =
  let oh, ow = out_dims sh in
  let rows = sh.c * sh.r * sh.s in
  let cols = sh.n * oh * ow in
  let m = Tensor.create [| rows; cols |] in
  for c = 0 to sh.c - 1 do
    for r = 0 to sh.r - 1 do
      for s = 0 to sh.s - 1 do
        let row = (((c * sh.r) + r) * sh.s) + s in
        for n = 0 to sh.n - 1 do
          for y = 0 to oh - 1 do
            for x = 0 to ow - 1 do
              let iy = (y * sh.p.stride) + r - sh.p.pad in
              let ix = (x * sh.p.stride) + s - sh.p.pad in
              let v =
                if iy >= 0 && iy < sh.h && ix >= 0 && ix < sh.w then
                  Tensor.get4 input n c iy ix
                else 0.0
              in
              Tensor.set2 m row ((((n * oh) + y) * ow) + x) v
            done
          done
        done
      done
    done
  done;
  m

let im2col_gemm ~(input : Tensor.t) ~(weight : Tensor.t) ~(p : params) :
  Tensor.t =
  let sh = shape_of_tensors ~input ~weight ~p in
  let oh, ow = out_dims sh in
  let patches = im2col ~input sh in
  (* weights viewed as K x (C*R*S) *)
  let wmat =
    Tensor.of_array
      [| sh.k; sh.c * sh.r * sh.s |]
      (Array.copy weight.Tensor.data)
  in
  let cmat = Tensor.create [| sh.k; sh.n * oh * ow |] in
  Gemm.blocked ~a:wmat ~b:patches ~c:cmat ();
  (* reshape K x (N*OH*OW) -> N,K,OH,OW *)
  let out = Tensor.create [| sh.n; sh.k; oh; ow |] in
  for k = 0 to sh.k - 1 do
    for n = 0 to sh.n - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          Tensor.set4 out n k y x
            (Tensor.get2 cmat k ((((n * oh) + y) * ow) + x))
        done
      done
    done
  done;
  out

(* --- costs --- *)

let f = float_of_int

let macs (sh : shape) =
  let oh, ow = out_dims sh in
  f sh.n *. f sh.k *. f oh *. f ow *. f sh.c *. f sh.r *. f sh.s

let tensor_bytes (sh : shape) =
  let oh, ow = out_dims sh in
  let input = f sh.n *. f sh.c *. f sh.h *. f sh.w in
  let weights = f sh.k *. f sh.c *. f sh.r *. f sh.s in
  let output = f sh.n *. f sh.k *. f oh *. f ow in
  (4.0 *. input, 4.0 *. weights, 4.0 *. output)

let cost_naive (sh : shape) : Opcost.t =
  (* two loads per MAC, no reuse captured by the cache model *)
  { Opcost.vflops = 0.0
  ; sflops = 2.0 *. macs sh
  ; stream_bytes = 0.0
  ; latency_bytes = 8.0 *. macs sh
  ; launches = 1
  }

let cost_direct (machine : Runtime.Machine.t) (sh : shape) : Opcost.t =
  let input_b, weight_b, output_b = tensor_bytes sh in
  (* cache-blocked: each tensor re-read once per blocking pass; the number
     of passes grows as the per-image working set overflows the LLC *)
  let working_set = input_b /. f sh.n +. weight_b in
  let passes =
    Float.max 1.0 (working_set /. float_of_int machine.cache_bytes *. 4.0)
  in
  (* direct convolution runs strided, short-vector inner loops: its
     arithmetic rate is the machine's SIMD peak derated by
     [short_vector_eff] (we charge the lost efficiency as extra flops) *)
  { Opcost.vflops = 2.0 *. macs sh /. machine.short_vector_eff
  ; sflops = 0.0
  ; stream_bytes = 0.0
  ; latency_bytes = passes *. (input_b +. weight_b +. output_b)
  ; launches = 1
  }

let cost_im2col_gemm (sh : shape) : Opcost.t =
  let oh, ow = out_dims sh in
  let input_b, _, _ = tensor_bytes sh in
  let patch_b = 4.0 *. f (sh.c * sh.r * sh.s) *. f (sh.n * oh * ow) in
  let im2col_cost =
    { Opcost.vflops = 0.0
    ; sflops = 0.0
    ; stream_bytes = input_b +. patch_b (* read input, write patches *)
    ; latency_bytes = 0.0
    ; launches = 1
    }
  in
  let gemm_cost =
    Gemm.cost ~m:sh.k ~n:(sh.n * oh * ow) ~k:(sh.c * sh.r * sh.s)
  in
  Opcost.(im2col_cost ++ gemm_cost)

(* Backward passes have the same algorithmic structure (GEMMs against the
   transposed patch/weight matrices); cost them as ~2x the forward. *)
let cost_backward base = Opcost.(base ++ base)
