(* The PyTorch custom CUDA kernels MocCUDA routes through Polygeist
   (Sec. V-B): ClassNLLCriterion_updateOutput — which uses
   __syncthreads — and ClassNLLCriterion_updateGradInput.  They are
   compiled by our own CUDA frontend, barrier-lowered, lowered to OpenMP
   and then executed by the interpreter, demonstrating the automatic path
   for kernels nobody hand-ported. *)

open Tensorlib

let block = 64

let cuda_src =
  Printf.sprintf
    {|
__global__ void nll_update_output(float* output, float* log_probs,
                                  int* targets, int n, int nclasses) {
  __shared__ float partial[%d];
  int t = threadIdx.x;
  float acc = 0.0f;
  for (int i = t; i < n; i += %d) {
    acc -= log_probs[i * nclasses + targets[i]];
  }
  partial[t] = acc;
  __syncthreads();
  for (int s = %d / 2; s > 0; s = s / 2) {
    if (t < s) partial[t] += partial[t + s];
    __syncthreads();
  }
  if (t == 0) output[0] = partial[0] / (float)n;
}

__global__ void nll_update_grad_input(float* grad_input, int* targets,
                                      int n, int nclasses) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    grad_input[i * nclasses + targets[i]] = 0.0f - 1.0f / (float)n;
  }
}

void nll_forward(float* output, float* log_probs, int* targets, int n,
                 int nclasses) {
  nll_update_output<<<1, %d>>>(output, log_probs, targets, n, nclasses);
}

void nll_backward(float* grad_input, int* targets, int n, int nclasses) {
  nll_update_grad_input<<<(n + %d - 1) / %d, %d>>>(grad_input, targets, n,
                                                   nclasses);
}
|}
    block block block block block block block

(* The transpiled module, built once: frontend -> full barrier-lowering
   pipeline -> OpenMP dialect. *)
let transpiled : Ir.Op.op Lazy.t =
  lazy
    (let m = Cudafe.Codegen.compile cuda_src in
     Core.Cpuify.pipeline m;
     ignore (Core.Omp_lower.run m);
     Core.Canonicalize.run m;
     (match Ir.Verifier.verify_result m with
      | Ok () -> ()
      | Error e -> failwith ("nll kernel does not verify: " ^ e));
     m)

(* Run the transpiled forward kernel. *)
let forward ~(log_probs : Tensor.t) ~(targets : int array) : float =
  let m = Lazy.force transpiled in
  let n = log_probs.Tensor.shape.(0) in
  let nclasses = log_probs.Tensor.shape.(1) in
  let out = Interp.Mem.of_float_array [| 0.0 |] in
  let lp = Interp.Mem.of_float_array (Array.copy log_probs.Tensor.data) in
  let tg = Interp.Mem.of_int_array (Array.copy targets) in
  let _ =
    Interp.Eval.run m "nll_forward"
      [ Interp.Mem.Buf out; Interp.Mem.Buf lp; Interp.Mem.Buf tg
      ; Interp.Mem.Int n; Interp.Mem.Int nclasses
      ]
  in
  (Interp.Mem.float_contents out).(0)

(* Run the transpiled backward kernel: returns the gradient tensor. *)
let backward ~(n : int) ~(nclasses : int) ~(targets : int array) : Tensor.t =
  let m = Lazy.force transpiled in
  let grad = Interp.Mem.of_float_array (Array.make (n * nclasses) 0.0) in
  let tg = Interp.Mem.of_int_array (Array.copy targets) in
  let _ =
    Interp.Eval.run m "nll_backward"
      [ Interp.Mem.Buf grad; Interp.Mem.Buf tg; Interp.Mem.Int n
      ; Interp.Mem.Int nclasses
      ]
  in
  Tensor.of_array [| n; nclasses |] (Interp.Mem.float_contents grad)
