(* The four PyTorch execution backends the paper compares on Fig. 15:


   - [Native]: PyTorch's default CPU backend — naive six-loop
     convolution, scalar kernels.
   - [One_dnn]: the (Fujitsu-tuned) oneDNN library — vectorized direct
     convolution blocked for commodity cache hierarchies; its access
     pattern cannot exploit the A64FX's HBM.
   - [Moccuda_expert]: MocCUDA with the hand-written OpenMP kernels —
     im2col + GEMM convolutions, HBM-friendly streaming.
   - [Moccuda_polygeist]: the same, but the custom PyTorch CUDA kernels
     (the NLL criterion with its __syncthreads) are transpiled
     automatically by the Polygeist pipeline instead of hand-ported; a
     small launch overhead accounts for the extra fissioned regions. *)

open Tensorlib

type t =
  | Native
  | One_dnn
  | Moccuda_expert
  | Moccuda_polygeist

let name = function
  | Native -> "native"
  | One_dnn -> "oneDNN"
  | Moccuda_expert -> "MocCUDA+Expert"
  | Moccuda_polygeist -> "MocCUDA+Polygeist"

let all = [ Native; One_dnn; Moccuda_expert; Moccuda_polygeist ]

(* --- computation (all backends agree numerically; differential tests
   rely on this) --- *)

let conv2d (backend : t) ~(input : Tensor.t) ~(weight : Tensor.t)
    ~(p : Conv.params) : Tensor.t =
  match backend with
  | Native -> Conv.naive ~input ~weight ~p
  | One_dnn -> Conv.direct ~input ~weight ~p
  | Moccuda_expert | Moccuda_polygeist -> Conv.im2col_gemm ~input ~weight ~p

let nll_loss (backend : t) ~(log_probs : Tensor.t) ~(targets : int array) :
  float =
  match backend with
  | Moccuda_polygeist ->
    (* the actual transpiled CUDA kernel, through the whole pipeline *)
    Nll_kernel.forward ~log_probs ~targets
  | Native | One_dnn | Moccuda_expert -> Layers.nll_loss ~log_probs ~targets

(* --- cost --- *)

let conv2d_cost (backend : t) (machine : Runtime.Machine.t)
    (sh : Conv.shape) : Opcost.t =
  match backend with
  | Native -> Conv.cost_naive sh
  | One_dnn -> Conv.cost_direct machine sh
  | Moccuda_expert -> Conv.cost_im2col_gemm sh
  | Moccuda_polygeist ->
    let c = Conv.cost_im2col_gemm sh in
    { c with Opcost.launches = c.Opcost.launches + 1 }
