(* Emulation of the CUDA runtime surface PyTorch exercises (Sec. V-B):
   device enumeration/properties, memory management, and streams.


   PyTorch's interaction with CUDART is "mostly limited to identifying
   properties of installed GPUs, memory management, and management and
   synchronization of CUDA streams"; MocCUDA reports the property dump of
   a real GeForce RTX 2080 Ti and emulates one device per NUMA domain.
   Streams are serial task queues drained on synchronization — the role
   Apple's Grand Central Dispatch plays in the paper's implementation. *)

open Tensorlib

type device_properties =
  { prop_name : string
  ; total_global_mem : int
  ; shared_mem_per_block : int
  ; warp_size : int
  ; max_threads_per_block : int
  ; max_threads_dim : int * int * int
  ; max_grid_size : int * int * int
  ; multi_processor_count : int
  ; clock_rate_khz : int
  ; compute_capability : int * int
  }

(* The dump MocCUDA ships: an NVIDIA GeForce RTX 2080 Ti. *)
let rtx_2080_ti =
  { prop_name = "NVIDIA GeForce RTX 2080 Ti"
  ; total_global_mem = 11 * 1024 * 1024 * 1024
  ; shared_mem_per_block = 48 * 1024
  ; warp_size = 32
  ; max_threads_per_block = 1024
  ; max_threads_dim = (1024, 1024, 64)
  ; max_grid_size = (2147483647, 65535, 65535)
  ; multi_processor_count = 68
  ; clock_rate_khz = 1545000
  ; compute_capability = (7, 5)
  }

type error =
  | Success
  | Invalid_value
  | Out_of_memory
  | Invalid_device

type stream =
  { stream_id : int
  ; queue : (unit -> unit) Queue.t
  }

type state =
  { mutable devices : int
  ; mutable current_device : int
  ; allocations : (int, Tensor.t) Hashtbl.t
  ; mutable next_ptr : int
  ; mutable allocated_bytes : int
  ; streams : (int, stream) Hashtbl.t
  ; mutable next_stream : int
  }

let create ?(numa_domains = 4) () =
  { devices = numa_domains
  ; current_device = 0
  ; allocations = Hashtbl.create 64
  ; next_ptr = 1
  ; allocated_bytes = 0
  ; streams = Hashtbl.create 8
  ; next_stream = 1
  }

let cuda_get_device_count (st : state) = (Success, st.devices)

let cuda_set_device (st : state) d =
  if d < 0 || d >= st.devices then Invalid_device
  else begin
    st.current_device <- d;
    Success
  end

let cuda_get_device_properties (_st : state) d =
  if d < 0 then (Invalid_device, None) else (Success, Some rtx_2080_ti)

(* device memory: "pointers" are integer handles over host tensors *)
let cuda_malloc (st : state) (bytes : int) : error * int =
  if bytes < 0 then (Invalid_value, 0)
  else if st.allocated_bytes + bytes > rtx_2080_ti.total_global_mem then
    (Out_of_memory, 0)
  else begin
    let ptr = st.next_ptr in
    st.next_ptr <- ptr + 1;
    st.allocated_bytes <- st.allocated_bytes + bytes;
    Hashtbl.replace st.allocations ptr
      (Tensor.create [| (bytes + 3) / 4 |]);
    (Success, ptr)
  end

let cuda_free (st : state) (ptr : int) : error =
  match Hashtbl.find_opt st.allocations ptr with
  | None -> Invalid_value
  | Some t ->
    st.allocated_bytes <- st.allocated_bytes - Tensor.bytes t;
    Hashtbl.remove st.allocations ptr;
    Success

let deref (st : state) (ptr : int) : Tensor.t option =
  Hashtbl.find_opt st.allocations ptr

type memcpy_kind =
  | Host_to_device
  | Device_to_host
  | Device_to_device

let cuda_memcpy (st : state) ~(dst : [ `Host of float array | `Device of int ])
    ~(src : [ `Host of float array | `Device of int ]) ~(count : int)
    (_kind : memcpy_kind) : error =
  let floats = count / 4 in
  let read = function
    | `Host a -> Some a
    | `Device p -> Option.map (fun (t : Tensor.t) -> t.Tensor.data) (deref st p)
  in
  match read dst, read src with
  | Some d, Some s when Array.length d >= floats && Array.length s >= floats ->
    Array.blit s 0 d 0 floats;
    Success
  | _ -> Invalid_value

(* streams: serial dispatch queues (the GCD substitute) *)
let cuda_stream_create (st : state) : error * int =
  let id = st.next_stream in
  st.next_stream <- id + 1;
  Hashtbl.replace st.streams id { stream_id = id; queue = Queue.create () };
  (Success, id)

let cuda_stream_destroy (st : state) (id : int) : error =
  if Hashtbl.mem st.streams id then begin
    Hashtbl.remove st.streams id;
    Success
  end
  else Invalid_value

let enqueue (st : state) (id : int) (task : unit -> unit) : error =
  match Hashtbl.find_opt st.streams id with
  | Some s ->
    Queue.push task s.queue;
    Success
  | None -> Invalid_value

let cuda_stream_synchronize (st : state) (id : int) : error =
  match Hashtbl.find_opt st.streams id with
  | Some s ->
    while not (Queue.is_empty s.queue) do
      (Queue.pop s.queue) ()
    done;
    Success
  | None -> Invalid_value

let cuda_device_synchronize (st : state) : error =
  Hashtbl.iter
    (fun _ (s : stream) ->
      while not (Queue.is_empty s.queue) do
        (Queue.pop s.queue) ()
      done)
    st.streams;
  Success
