(** ResNet-50 structure (53 convolutions at 224x224) and the Fig. 15
    synthetic-training throughput harness, plus a miniature functional
    model used for backend-agreement tests. *)

type conv_layer =
  { c_in : int
  ; c_out : int
  ; ksize : int
  ; stride : int
  ; hw : int
  }

val conv_layers : conv_layer list
val n_convs : int
val conv_shape : batch:int -> conv_layer -> Tensorlib.Conv.shape

(** Simulated cost of one training step (forward + backward). *)
val step_cost :
  Backends.t -> Runtime.Machine.t -> batch:int -> Tensorlib.Opcost.t

(** Images per second of synthetic training (the Benchmarker metric). *)
val throughput :
  Backends.t -> Runtime.Machine.t -> batch:int -> threads:int -> float

type mini_model =
  { stem_w : Tensorlib.Tensor.t
  ; block_w1 : Tensorlib.Tensor.t
  ; block_w2 : Tensorlib.Tensor.t
  ; fc_w : Tensorlib.Tensor.t
  }

val mini_model : channels:int -> mini_model

(** Forward pass of the miniature network; returns the NLL loss. *)
val mini_forward :
  Backends.t ->
  mini_model ->
  images:Tensorlib.Tensor.t ->
  targets:int array ->
  float
