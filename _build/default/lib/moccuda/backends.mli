(** The four PyTorch execution backends of Fig. 15: the native CPU
    fallback, (Fujitsu-tuned) oneDNN, and MocCUDA with expert-written or
    Polygeist-transpiled kernels.  All backends agree numerically; they
    differ in the algorithm (direct vs. im2col+GEMM convolution) and in
    the cost descriptors the machine model turns into throughput. *)

type t =
  | Native
  | One_dnn
  | Moccuda_expert
  | Moccuda_polygeist

val name : t -> string
val all : t list

val conv2d :
  t ->
  input:Tensorlib.Tensor.t ->
  weight:Tensorlib.Tensor.t ->
  p:Tensorlib.Conv.params ->
  Tensorlib.Tensor.t

(** [Moccuda_polygeist] computes the loss by interpreting the actual
    transpiled ClassNLLCriterion CUDA kernel. *)
val nll_loss :
  t -> log_probs:Tensorlib.Tensor.t -> targets:int array -> float

val conv2d_cost :
  t -> Runtime.Machine.t -> Tensorlib.Conv.shape -> Tensorlib.Opcost.t
