lib/moccuda/backends.ml: Conv Layers Nll_kernel Opcost Runtime Tensor Tensorlib
