lib/moccuda/cudart.ml: Array Hashtbl Option Queue Tensor Tensorlib
