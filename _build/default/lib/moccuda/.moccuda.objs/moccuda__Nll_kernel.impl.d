lib/moccuda/nll_kernel.ml: Array Core Cudafe Interp Ir Lazy Printf Tensor Tensorlib
