lib/moccuda/backends.mli: Runtime Tensorlib
