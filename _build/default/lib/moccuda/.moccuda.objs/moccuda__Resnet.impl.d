lib/moccuda/resnet.ml: Array Backends Conv Layers List Opcost Runtime Tensor Tensorlib
