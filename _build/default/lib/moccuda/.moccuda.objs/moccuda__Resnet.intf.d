lib/moccuda/resnet.mli: Backends Runtime Tensorlib
