(** The GPU-semantics interpreter: ground truth for every transformation.

    Block-parallel loops run their threads as cooperative fibers (OCaml 5
    effect handlers) that all stop at each [polygeist.barrier] before any
    proceeds; OpenMP constructs run with a configurable team size, static
    worksharing chunks and explicit [omp.barrier] joins.  Divergent
    barriers (CUDA UB) and out-of-bounds accesses raise. *)

type stats =
  { mutable ops : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable flops : int
  ; mutable barriers : int
  }

type state

val create : ?team_size:int -> Ir.Op.op -> state

(** [run ?team_size modul fname args] interprets the named host function;
    returns its result (if any) and the execution statistics.
    @raise Mem.Runtime_error on memory faults, barrier divergence, etc. *)
val run :
  ?team_size:int -> Ir.Op.op -> string -> Mem.rv list -> Mem.rv option * stats
