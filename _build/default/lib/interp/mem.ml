(* Runtime memory: buffers backing memrefs, and runtime scalar values. *)

open Ir

type data =
  | Fdata of float array
  | Idata of int array

type buffer =
  { elem : Types.dtype
  ; dims : int array
  ; data : data
  ; bufid : int
  }

type rv =
  | Int of int (* all integer dtypes; I1 is 0/1 *)
  | Flt of float
  | Buf of buffer

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let buf_counter = ref 0

let alloc_buffer elem dims =
  incr buf_counter;
  let size = Array.fold_left ( * ) 1 dims in
  let data =
    if Types.is_float_dtype elem then Fdata (Array.make size 0.0)
    else Idata (Array.make size 0)
  in
  { elem; dims; data; bufid = !buf_counter }

let size (b : buffer) = Array.fold_left ( * ) 1 b.dims

(* Row-major linearization with bounds checking. *)
let linear_index (b : buffer) (idxs : int array) =
  let n = Array.length b.dims in
  if Array.length idxs <> n then
    fail "buffer #%d: rank mismatch (%d indices for rank %d)" b.bufid
      (Array.length idxs) n;
  let off = ref 0 in
  for i = 0 to n - 1 do
    let ix = idxs.(i) in
    if ix < 0 || ix >= b.dims.(i) then
      fail "buffer #%d: index %d out of bounds [0,%d) in dim %d" b.bufid ix
        b.dims.(i) i;
    off := (!off * b.dims.(i)) + ix
  done;
  !off

let load (b : buffer) idxs : rv =
  let i = linear_index b idxs in
  match b.data with
  | Fdata a -> Flt a.(i)
  | Idata a -> Int a.(i)

let store (b : buffer) idxs (v : rv) =
  let i = linear_index b idxs in
  match b.data, v with
  | Fdata a, Flt f -> a.(i) <- f
  | Fdata a, Int n -> a.(i) <- float_of_int n
  | Idata a, Int n -> a.(i) <- n
  | Idata a, Flt f -> a.(i) <- int_of_float f
  | _, Buf _ -> fail "cannot store a buffer into a buffer"

let copy ~(src : buffer) ~(dst : buffer) =
  if size src <> size dst then fail "copy: size mismatch";
  match src.data, dst.data with
  | Fdata s, Fdata d -> Array.blit s 0 d 0 (Array.length s)
  | Idata s, Idata d -> Array.blit s 0 d 0 (Array.length s)
  | _ -> fail "copy: element type mismatch"

let as_int = function
  | Int n -> n
  | Flt f -> fail "expected integer value, got float %g" f
  | Buf _ -> fail "expected integer value, got buffer"

(* Integer view with C-style truncation for floats (used by casts). *)
let as_int_or_trunc = function
  | Int n -> n
  | Flt f -> int_of_float f
  | Buf _ -> fail "expected scalar value, got buffer"

let as_float = function
  | Flt f -> f
  | Int n -> float_of_int n
  | Buf _ -> fail "expected float value, got buffer"

let as_buf = function
  | Buf b -> b
  | Int _ | Flt _ -> fail "expected buffer value"

(* Convenience constructors for tests and drivers. *)
let of_float_array ?(dims = [||]) (a : float array) =
  incr buf_counter;
  let dims = if dims = [||] then [| Array.length a |] else dims in
  { elem = Types.F32; dims; data = Fdata a; bufid = !buf_counter }

let of_int_array ?(dims = [||]) (a : int array) =
  incr buf_counter;
  let dims = if dims = [||] then [| Array.length a |] else dims in
  { elem = Types.Index; dims; data = Idata a; bufid = !buf_counter }

let float_contents (b : buffer) =
  match b.data with
  | Fdata a -> Array.copy a
  | Idata a -> Array.map float_of_int a

let int_contents (b : buffer) =
  match b.data with
  | Idata a -> Array.copy a
  | Fdata a -> Array.map int_of_float a
