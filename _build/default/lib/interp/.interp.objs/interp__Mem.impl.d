lib/interp/mem.ml: Array Ir Printf Types
