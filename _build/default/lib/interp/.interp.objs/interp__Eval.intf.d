lib/interp/eval.mli: Ir Mem
