lib/interp/mem.mli: Ir
