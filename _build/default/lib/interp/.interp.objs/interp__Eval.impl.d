lib/interp/eval.ml: Array Effect Float Int32 Ir List Mem Op Types Value
