(** Structural indexes over one op tree: defining ops of SSA values,
    parent links, and containment queries.  Rebuild after the tree
    changes. *)

type def =
  | Def_op of Ir.Op.op (** value is a result of this op *)
  | Def_arg of Ir.Op.op * int (** value is an arg of region [i] of this op *)
  | Def_external (** defined outside the analyzed tree *)

type t

val build : Ir.Op.op -> t
val def : t -> Ir.Value.t -> def
val defining_op : t -> Ir.Value.t -> Ir.Op.op option
val parent : t -> Ir.Op.op -> Ir.Op.op option

(** Is [anc] a (non-strict) ancestor of [op]? *)
val is_ancestor : t -> anc:Ir.Op.op -> Ir.Op.op -> bool

(** Is the value defined inside [container] (result or region arg of it
    or anything nested in it)? *)
val defined_inside : t -> container:Ir.Op.op -> Ir.Value.t -> bool

(** Ancestors of [op] up to (excluding) [stop], innermost first.
    @raise Invalid_argument if [stop] is not an ancestor. *)
val ancestors_up_to : t -> stop:Ir.Op.op -> Ir.Op.op -> Ir.Op.op list

(** Serial-loop induction variables strictly between [op] and [stop]. *)
val enclosing_loop_ivs : t -> stop:Ir.Op.op -> Ir.Op.op -> Ir.Value.Set.t
