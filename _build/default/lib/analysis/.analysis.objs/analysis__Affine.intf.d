lib/analysis/affine.mli: Info Ir Map
