lib/analysis/effects.mli: Affine Info Ir
