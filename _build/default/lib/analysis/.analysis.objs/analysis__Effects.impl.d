lib/analysis/effects.ml: Affine Array Hashtbl Info Ir List Op Option Value
