lib/analysis/info.mli: Ir
