lib/analysis/info.ml: Array Hashtbl Ir List Op Value
