lib/analysis/affine.ml: Array Info Int Ir Op Printf String Types Value
