(* Structural indexes over one function (or any op tree): defining ops of
   SSA values, parent links, and containment queries.  Rebuilt by each
   pass invocation after the tree changes. *)

open Ir

type def =
  | Def_op of Op.op (* value is a result of this op *)
  | Def_arg of Op.op * int (* value is arg #i of a region of this op *)
  | Def_external (* defined outside the analyzed tree (e.g. func params
                    when analyzing a nested op) *)

type t =
  { defs : def Value.Tbl.t
  ; parents : (int, Op.op) Hashtbl.t (* op oid -> parent op *)
  ; root : Op.op
  }

let build (root : Op.op) : t =
  let defs = Value.Tbl.create 256 in
  let parents = Hashtbl.create 256 in
  let rec go (op : Op.op) =
    Array.iter (fun v -> Value.Tbl.replace defs v (Def_op op)) op.results;
    Array.iter
      (fun (r : Op.region) ->
        Array.iteri (fun i v -> Value.Tbl.replace defs v (Def_arg (op, i))) r.rargs;
        List.iter
          (fun child ->
            Hashtbl.replace parents child.Op.oid op;
            go child)
          r.body)
      op.regions
  in
  go root;
  { defs; parents; root }

let def (t : t) (v : Value.t) : def =
  match Value.Tbl.find_opt t.defs v with
  | Some d -> d
  | None -> Def_external

let defining_op (t : t) (v : Value.t) : Op.op option =
  match def t v with
  | Def_op op -> Some op
  | Def_arg _ | Def_external -> None

let parent (t : t) (op : Op.op) : Op.op option =
  Hashtbl.find_opt t.parents op.oid

(* Is [anc] a (strict or non-strict) ancestor of [op]? *)
let is_ancestor (t : t) ~(anc : Op.op) (op : Op.op) : bool =
  let rec go o =
    o.Op.oid = anc.Op.oid
    ||
    match parent t o with
    | Some p -> go p
    | None -> false
  in
  go op

(* Is value [v] defined inside op [container] (as a result or region arg of
   it or of anything nested in it)? *)
let defined_inside (t : t) ~(container : Op.op) (v : Value.t) : bool =
  match def t v with
  | Def_op op -> is_ancestor t ~anc:container op
  | Def_arg (op, _) -> is_ancestor t ~anc:container op
  | Def_external -> false

(* The chain of ancestors of [op] up to (excluding) [stop], innermost
   first.  Fails if [stop] is not an ancestor. *)
let ancestors_up_to (t : t) ~(stop : Op.op) (op : Op.op) : Op.op list =
  let rec go o acc =
    match parent t o with
    | Some p when p.Op.oid = stop.Op.oid -> List.rev acc
    | Some p -> go p (p :: acc)
    | None -> invalid_arg "ancestors_up_to: stop is not an ancestor"
  in
  go op []

(* All serial-loop induction variables (For ivs and While-iteration
   context) strictly between [op] and [stop]. *)
let enclosing_loop_ivs (t : t) ~(stop : Op.op) (op : Op.op) : Value.Set.t =
  List.fold_left
    (fun acc (o : Op.op) ->
      match o.kind with
      | Op.For -> Value.Set.add (Op.for_iv o) acc
      | _ -> acc)
    Value.Set.empty
    (ancestors_up_to t ~stop op)
