(* Rodinia pathfinder: dynamic programming over a grid.  The CUDA version
   processes [pyramid] rows per launch inside shared memory, with a
   barrier per row and halo cells recomputed redundantly — trading
   duplicated computation for less synchronization, exactly the pattern
   the paper notes makes the GPU code more complex than the OpenMP
   sweep. *)

let block = 16

let cuda_src =
  Printf.sprintf
    {|
__global__ void dynproc_kernel(int* wall, int* src, int* dst, int cols,
                               int start_row, int rows_this_step) {
  __shared__ int prev[%d];
  __shared__ int result[%d];
  int tx = threadIdx.x;
  int x = blockIdx.x * %d + tx;
  if (x < cols) prev[tx] = src[x];
  __syncthreads();
  for (int i = 0; i < rows_this_step; i++) {
    if (x < cols) {
      int left = tx == 0 ? (x == 0 ? prev[tx] : prev[tx])
                         : prev[tx - 1];
      int up = prev[tx];
      int right = tx == %d - 1 ? (x == cols - 1 ? prev[tx] : prev[tx])
                               : prev[tx + 1];
      int shortest = min(left, min(up, right));
      result[tx] = shortest + wall[(start_row + i) * cols + x];
    }
    __syncthreads();
    if (x < cols) prev[tx] = result[tx];
    __syncthreads();
  }
  if (x < cols) dst[x] = prev[tx];
}
void run(int* wall, int* src, int* dst, int cols, int rows, int pyramid) {
  int row = 1;
  while (row < rows) {
    int todo = rows - row;
    int step = todo < pyramid ? todo : pyramid;
    dynproc_kernel<<<(cols + %d - 1) / %d, %d>>>(wall, src, dst, cols, row,
                                                 step);
    for (int j = 0; j < cols; j++) {
      src[j] = dst[j];
    }
    row = row + step;
  }
}
|}
    block block block block block block block

let omp_src =
  {|
void run(int* wall, int* src, int* dst, int cols, int rows, int pyramid) {
  for (int row = 1; row < rows; row++) {
    #pragma omp parallel for
    for (int x = 0; x < cols; x++) {
      int left = x == 0 ? src[x] : src[x - 1];
      int up = src[x];
      int right = x == cols - 1 ? src[x] : src[x + 1];
      int shortest = min(left, min(up, right));
      dst[x] = shortest + wall[row * cols + x];
    }
    for (int j = 0; j < cols; j++) {
      src[j] = dst[j];
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "pathfinder"
  ; description = "grid dynamic programming with in-tile row iterations"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun cols ->
        let rows = 8 in
        let r = Bench_def.frand 91 in
        let wall =
          Array.init (rows * cols) (fun _ -> int_of_float (r () *. 10.0))
        in
        let src = Array.init cols (fun i -> wall.(i)) in
        { Bench_def.buffers =
            [| Interp.Mem.of_int_array wall
             ; Interp.Mem.of_int_array src
             ; Bench_def.izero cols
            |]
        ; scalars = [ cols; rows; 4 ]
        })
  ; test_size = 32
  ; paper_size = 100_000
  ; cost_scalars = (fun n -> [ n; 100; 4 ])
  ; n_buffers = 3
  }
