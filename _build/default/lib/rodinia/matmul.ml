(* Tiled shared-memory matrix multiplication — the kernel of the MCUDA
   comparison (Fig. 12).  8x8 tiles staged through shared memory with two
   __syncthreads per tile step, the canonical barrier-in-loop pattern. *)

let tile = 8

let cuda_src =
  Printf.sprintf
    {|
__global__ void mm(float* C, float* A, float* B, int n) {
  __shared__ float As[%d][%d];
  __shared__ float Bs[%d][%d];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * %d + ty;
  int col = blockIdx.x * %d + tx;
  float acc = 0.0f;
  for (int t = 0; t < n / %d; t++) {
    As[ty][tx] = A[row * n + t * %d + tx];
    Bs[ty][tx] = B[(t * %d + ty) * n + col];
    __syncthreads();
    for (int k = 0; k < %d; k++) {
      acc += As[ty][k] * Bs[k][tx];
    }
    __syncthreads();
  }
  C[row * n + col] = acc;
}
void run(float* C, float* A, float* B, int n) {
  mm<<<dim3(n / %d, n / %d), dim3(%d, %d)>>>(C, A, B, n);
}
|}
    tile tile tile tile tile tile tile tile tile tile tile tile tile tile

(* The hand-written OpenMP version parallelizes the row loop. *)
let omp_src =
  {|
void run(float* C, float* A, float* B, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      float acc = 0.0f;
      for (int k = 0; k < n; k++) {
        acc += A[i * n + k] * B[k * n + j];
      }
      C[i * n + j] = acc;
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "matmul"
  ; description = "tiled shared-memory matrix multiplication (Fig. 12)"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        { Bench_def.buffers =
            [| Bench_def.fzero (n * n)
             ; Bench_def.fbuf 11 (n * n)
             ; Bench_def.fbuf 23 (n * n)
            |]
        ; scalars = [ n ]
        })
  ; test_size = 16
  ; paper_size = 1024
  ; cost_scalars = (fun n -> [ n ])
  ; n_buffers = 3
  }
