(* Rodinia b+tree: the findK kernel — each thread answers one key query
   by walking an implicit k-ary search tree laid out level by level in an
   array.  Pointer-chasing loads, no synchronization. *)

let fanout = 4
let levels = 5 (* fanout^levels leaves *)

let cuda_src =
  Printf.sprintf
    {|
__global__ void findK(int* keys, int* tree, int* values, int* results,
                      int nq, int nleaves) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < nq) {
    int key = keys[tid];
    int node = 0;
    int base = 0;
    int width = 1;
    for (int level = 0; level < %d; level++) {
      int child = 0;
      for (int c = 1; c < %d; c++) {
        if (key >= tree[base + node * %d + c - 1]) child = c;
      }
      base = base + width * %d;
      node = node * %d + child;
      width = width * %d;
    }
    results[tid] = values[node];
  }
}
void run(int* keys, int* tree, int* values, int* results, int nq,
         int nleaves) {
  findK<<<(nq + 63) / 64, 64>>>(keys, tree, values, results, nq, nleaves);
}
|}
    levels fanout (fanout - 1) (fanout - 1) fanout fanout

let omp_src =
  Printf.sprintf
    {|
void run(int* keys, int* tree, int* values, int* results, int nq,
         int nleaves) {
  #pragma omp parallel for
  for (int tid = 0; tid < nq; tid++) {
    int key = keys[tid];
    int node = 0;
    int base = 0;
    int width = 1;
    for (int level = 0; level < %d; level++) {
      int child = 0;
      for (int c = 1; c < %d; c++) {
        if (key >= tree[base + node * %d + c - 1]) child = c;
      }
      base = base + width * %d;
      node = node * %d + child;
      width = width * %d;
    }
    results[tid] = values[node];
  }
}
|}
    levels fanout (fanout - 1) (fanout - 1) fanout fanout

(* Tree with separator keys for a sorted leaf array 0..nleaves-1. *)
let make_tree () =
  let nleaves = int_of_float (float_of_int fanout ** float_of_int levels) in
  (* total internal nodes across levels: 1 + f + f^2 + ... + f^(levels-1) *)
  let total_nodes =
    let rec go l acc w = if l = 0 then acc else go (l - 1) (acc + w) (w * fanout) in
    go levels 0 1
  in
  let tree = Array.make (total_nodes * (fanout - 1)) 0 in
  let base = ref 0 in
  let width = ref 1 in
  for _level = 0 to levels - 1 do
    let leaves_per_node = nleaves / !width in
    for node = 0 to !width - 1 do
      for c = 1 to fanout - 1 do
        tree.((!base + node) * (fanout - 1) + (c - 1)) <-
          (node * leaves_per_node) + (c * leaves_per_node / fanout)
      done
    done;
    base := !base + !width;
    width := !width * fanout
  done;
  (tree, nleaves)

let bench : Bench_def.t =
  { name = "b+tree"
  ; description = "k-ary search-tree range/point queries (findK)"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun nq ->
        let tree, nleaves = make_tree () in
        let r = Bench_def.frand 71 in
        let keys =
          Array.init nq (fun _ -> int_of_float (r () *. float_of_int nleaves))
        in
        let values = Array.init nleaves (fun i -> i * 3) in
        { Bench_def.buffers =
            [| Interp.Mem.of_int_array keys
             ; Interp.Mem.of_int_array tree
             ; Interp.Mem.of_int_array values
             ; Bench_def.izero nq
            |]
        ; scalars = [ nq; nleaves ]
        })
  ; test_size = 64
  ; paper_size = 65536
  ; cost_scalars = (fun n -> [ n; 1024 ])
  ; n_buffers = 4
  }
