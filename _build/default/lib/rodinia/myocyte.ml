(* Rodinia myocyte: cardiac myocyte ODE integration — transcendental-heavy
   per-thread work with almost no memory traffic, the compute-bound
   extreme of the suite. *)

let cuda_src =
  {|
__global__ void solver(float* y, float* out, int n, int iters) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    float v = y[tid];
    float w = y[tid] * 0.5f;
    for (int i = 0; i < iters; i++) {
      float dv = expf(0.0f - v) * sinf(w) - v * 0.05f + cosf(v) * 0.3f;
      float dw = (v - w) * 0.25f - expf(0.0f - w) * 0.1f;
      v = v + 0.01f * dv;
      w = w + 0.01f * dw;
    }
    out[tid] = v + w;
  }
}
void run(float* y, float* out, int n, int iters) {
  solver<<<(n + 31) / 32, 32>>>(y, out, n, iters);
}
|}

let omp_src =
  {|
void run(float* y, float* out, int n, int iters) {
  #pragma omp parallel for
  for (int tid = 0; tid < n; tid++) {
    float v = y[tid];
    float w = y[tid] * 0.5f;
    for (int i = 0; i < iters; i++) {
      float dv = expf(0.0f - v) * sinf(w) - v * 0.05f + cosf(v) * 0.3f;
      float dw = (v - w) * 0.25f - expf(0.0f - w) * 0.1f;
      v = v + 0.01f * dv;
      w = w + 0.01f * dw;
    }
    out[tid] = v + w;
  }
}
|}

let bench : Bench_def.t =
  { name = "myocyte"
  ; description = "ODE integration, transcendental-heavy per-thread work"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        { Bench_def.buffers = [| Bench_def.fbuf 5 n; Bench_def.fzero n |]
        ; scalars = [ n; 10 ]
        })
  ; test_size = 32
  ; paper_size = 8192
  ; cost_scalars = (fun n -> [ n; 1000 ])
  ; n_buffers = 2
  }
