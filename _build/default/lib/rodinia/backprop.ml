(* Rodinia backprop: neural-network layer forward pass (the Fig. 9 kernel,
   with its redundant barriers and shared-memory round trips) and the
   weight-adjustment kernel. *)

(* block: 16 (ty: rows of the hidden layer) x 16 (tx: input columns) *)
let h = 16

let cuda_src =
  Printf.sprintf
    {|
__global__ void layerforward(float* input, float* input_weights,
                             float* partial_sum, int in, int hid) {
  __shared__ float input_node[%d];
  __shared__ float weight_matrix[%d][%d];
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int index = (hid + 1) * %d * by + (hid + 1) * ty + tx + 1 + (hid + 1);
  int index_in = %d * by + ty + 1;
  if (tx == 0)
    input_node[ty] = input[index_in];
  __syncthreads();
  weight_matrix[ty][tx] = input_weights[index];
  __syncthreads();
  weight_matrix[ty][tx] = weight_matrix[ty][tx] * input_node[ty];
  __syncthreads();
  for (int i = 1; i <= %d; i++) {
    int power_two = (int)powf(2.0f, (float)i);
    int half_power = (int)powf(2.0f, (float)(i - 1));
    if (ty %% power_two == 0)
      weight_matrix[ty][tx] = weight_matrix[ty][tx]
                            + weight_matrix[ty + half_power][tx];
    __syncthreads();
  }
  input_weights[index] = weight_matrix[ty][tx];
  __syncthreads();
  if (tx == 0)
    partial_sum[by * hid + ty] = weight_matrix[tx][ty];
}

__global__ void adjust_weights(float* delta, int hid, float* ly, int in,
                               float* w, float* oldw) {
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int index = (hid + 1) * %d * by + (hid + 1) * ty + tx + 1 + (hid + 1);
  int index_y = %d * by + ty + 1;
  int index_x = tx + 1;
  w[index] = w[index] + 0.3f * delta[index_x] * ly[index_y]
           + 0.3f * oldw[index];
  oldw[index] = 0.3f * delta[index_x] * ly[index_y] + 0.3f * oldw[index];
}

void run(float* input, float* input_weights, float* partial_sum,
         float* delta, float* oldw, int in, int hid) {
  layerforward<<<dim3(1, in / %d), dim3(%d, %d)>>>(
      input, input_weights, partial_sum, in, hid);
  adjust_weights<<<dim3(1, in / %d), dim3(%d, %d)>>>(
      delta, hid, input, in, input_weights, oldw);
}
|}
    h h h h h 4 h h h h h h h h

let omp_src =
  Printf.sprintf
    {|
void run(float* input, float* input_weights, float* partial_sum,
         float* delta, float* oldw, int in, int hid) {
  #pragma omp parallel for
  for (int j = 1; j <= hid; j++) {
    float sum = 0.0f;
    for (int i = 1; i <= in; i++) {
      sum += input_weights[(hid + 1) * i + j] * input[i];
    }
    partial_sum[j - 1] = sum;
  }
  #pragma omp parallel for
  for (int j = 1; j <= hid; j++) {
    for (int i = 1; i <= in; i++) {
      float dw = 0.3f * delta[j] * input[i]
               + 0.3f * oldw[(hid + 1) * i + j];
      input_weights[(hid + 1) * i + j] += dw;
      oldw[(hid + 1) * i + j] = dw;
    }
  }
}
|}

(* The two implementations intentionally differ (linear array and blocked
   reduction vs. double loop — the paper calls this out), so they are not
   numerically comparable; correctness is checked differentially per
   implementation. *)

let bench : Bench_def.t =
  { name = "backprop"
  ; description = "neural net layer forward + weight adjustment (Fig. 9)"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        (* n = input layer size, multiple of 16; hid = 16 *)
        let hid = h in
        let wsize = (n + 1 + 1) * (hid + 1) in
        { Bench_def.buffers =
            [| Bench_def.fbuf 3 (n + 1)
             ; Bench_def.fbuf 7 wsize
             ; Bench_def.fzero (n / h * hid)
             ; Bench_def.fbuf 9 (hid + 1)
             ; Bench_def.fzero wsize
            |]
        ; scalars = [ n; hid ]
        })
  ; test_size = 32
  ; paper_size = 65536
  ; cost_scalars = (fun n -> [ n; h ])
  ; n_buffers = 5
  }
