(* Rodinia bfs: frontier-based breadth-first search over a CSR graph.
   Two kernels per level, launched from a host loop that polls a stop
   flag — the classic host/device ping-pong the unified representation
   optimizes across. *)

let cuda_src =
  {|
__global__ void bfs_kernel(int* frontier, int* next, int* visited,
                           int* offsets, int* edges, int* cost, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n && frontier[tid]) {
    frontier[tid] = 0;
    for (int i = offsets[tid]; i < offsets[tid + 1]; i++) {
      int id = edges[i];
      if (!visited[id]) {
        cost[id] = cost[tid] + 1;
        next[id] = 1;
      }
    }
  }
}

__global__ void bfs_kernel2(int* frontier, int* next, int* visited,
                            int* stop, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n && next[tid]) {
    frontier[tid] = 1;
    visited[tid] = 1;
    next[tid] = 0;
    stop[0] = 1;
  }
}

void run(int* frontier, int* next, int* visited, int* offsets, int* edges,
         int* cost, int* stop, int n) {
  int cont = 1;
  while (cont) {
    stop[0] = 0;
    bfs_kernel<<<(n + 63) / 64, 64>>>(frontier, next, visited, offsets,
                                      edges, cost, n);
    bfs_kernel2<<<(n + 63) / 64, 64>>>(frontier, next, visited, stop, n);
    cont = stop[0];
  }
}
|}

let omp_src =
  {|
void run(int* frontier, int* next, int* visited, int* offsets, int* edges,
         int* cost, int* stop, int n) {
  int cont = 1;
  while (cont) {
    stop[0] = 0;
    #pragma omp parallel for
    for (int tid = 0; tid < n; tid++) {
      if (frontier[tid]) {
        frontier[tid] = 0;
        for (int i = offsets[tid]; i < offsets[tid + 1]; i++) {
          int id = edges[i];
          if (!visited[id]) {
            cost[id] = cost[tid] + 1;
            next[id] = 1;
          }
        }
      }
    }
    #pragma omp parallel for
    for (int tid = 0; tid < n; tid++) {
      if (next[tid]) {
        frontier[tid] = 1;
        visited[tid] = 1;
        next[tid] = 0;
        stop[0] = 1;
      }
    }
    cont = stop[0];
  }
}
|}

(* Deterministic sparse graph: ring + a few long-range chords, CSR. *)
let make_graph n =
  let adj = Array.init n (fun i -> [ (i + 1) mod n; (i + n - 1) mod n ]) in
  for i = 0 to (n / 4) - 1 do
    let a = i * 4 mod n and b = (i * 7) + 3 in
    let b = b mod n in
    if a <> b then begin
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  done;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + List.length adj.(i)
  done;
  let edges = Array.make offsets.(n) 0 in
  let k = ref 0 in
  Array.iter
    (fun l ->
      List.iter
        (fun e ->
          edges.(!k) <- e;
          incr k)
        l)
    adj;
  (offsets, edges)

let bench : Bench_def.t =
  { name = "bfs"
  ; description = "frontier BFS over a CSR graph"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        let offsets, edges = make_graph n in
        let frontier = Array.make n 0 in
        frontier.(0) <- 1;
        let visited = Array.make n 0 in
        visited.(0) <- 1;
        { Bench_def.buffers =
            [| Interp.Mem.of_int_array frontier
             ; Bench_def.izero n
             ; Interp.Mem.of_int_array visited
             ; Interp.Mem.of_int_array offsets
             ; Interp.Mem.of_int_array edges
             ; Bench_def.izero n
             ; Bench_def.izero 1
            |]
        ; scalars = [ n ]
        })
  ; test_size = 64
  ; paper_size = 1_000_000
  ; cost_scalars = (fun n -> [ n ])
  ; n_buffers = 7
  }
