(* Rodinia particlefilter: the weight-normalization phase.  The CUDA code
   performs the block-level sum with __syncthreads tree reductions inside
   one kernel; the OpenMP reference expresses the same dependence
   structure with separate parallel-for loops — the contrast the paper
   credits for the transpiled version's speedup once the barriers are
   optimized. *)

let block = 64

let cuda_src =
  Printf.sprintf
    {|
__global__ void sum_weights(float* weights, float* partial, int n) {
  __shared__ float buf[%d];
  int t = threadIdx.x;
  int i = blockIdx.x * %d + t;
  if (i < n) buf[t] = weights[i];
  else buf[t] = 0.0f;
  __syncthreads();
  for (int s = %d / 2; s > 0; s = s / 2) {
    if (t < s) buf[t] += buf[t + s];
    __syncthreads();
  }
  if (t == 0) partial[blockIdx.x] = buf[0];
}

__global__ void normalize_weights(float* weights, float* partial,
                                  int nblocks, int n) {
  __shared__ float total[1];
  int t = threadIdx.x;
  int i = blockIdx.x * %d + t;
  if (t == 0) {
    float s = 0.0f;
    for (int b = 0; b < nblocks; b++) {
      s += partial[b];
    }
    total[0] = s;
  }
  __syncthreads();
  if (i < n) weights[i] = weights[i] / total[0];
}

void run(float* weights, float* partial, int n) {
  int nblocks = (n + %d - 1) / %d;
  sum_weights<<<nblocks, %d>>>(weights, partial, n);
  normalize_weights<<<nblocks, %d>>>(weights, partial, nblocks, n);
}
|}
    block block block block block block block block

let omp_src =
  {|
void run(float* weights, float* partial, int n) {
  partial[0] = 0.0f;
  for (int i = 0; i < n; i++) {
    partial[0] += weights[i];
  }
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    weights[i] = weights[i] / partial[0];
  }
}
|}

let bench : Bench_def.t =
  { name = "particlefilter"
  ; description = "particle weight normalization (reduction + scale)"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        let nblocks = (n + block - 1) / block in
        { Bench_def.buffers =
            [| Bench_def.fbuf 121 n; Bench_def.fzero nblocks |]
        ; scalars = [ n ]
        })
  ; test_size = 128
  ; paper_size = 400_000
  ; cost_scalars = (fun n -> [ n ])
  ; n_buffers = 2
  }
