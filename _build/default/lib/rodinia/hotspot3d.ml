(* Rodinia hotspot3D: 7-point 3-D thermal stencil, ping-pong buffers, no
   shared memory.  The CUDA version maps x/y to the launch and walks z in
   a serial loop, like the original. *)

let cuda_src =
  {|
__global__ void hotspot3d_kernel(float* tin, float* tout, float* power,
                                 int nx, int ny, int nz) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      int c = i + nx * (j + ny * k);
      float center = tin[c];
      float west = i == 0 ? center : tin[c - 1];
      float east = i == nx - 1 ? center : tin[c + 1];
      float north = j == 0 ? center : tin[c - nx];
      float south = j == ny - 1 ? center : tin[c + nx];
      float bottom = k == 0 ? center : tin[c - nx * ny];
      float top = k == nz - 1 ? center : tin[c + nx * ny];
      tout[c] = 0.4f * center
              + 0.1f * (west + east + north + south + bottom + top)
              + 0.05f * power[c];
    }
  }
}
void run(float* tin, float* tout, float* power, int nx, int ny, int nz,
         int steps) {
  for (int s = 0; s < steps; s++) {
    hotspot3d_kernel<<<dim3((nx + 7) / 8, (ny + 7) / 8), dim3(8, 8)>>>(
        tin, tout, power, nx, ny, nz);
    hotspot3d_kernel<<<dim3((nx + 7) / 8, (ny + 7) / 8), dim3(8, 8)>>>(
        tout, tin, power, nx, ny, nz);
  }
}
|}

let omp_src =
  {|
void run(float* tin, float* tout, float* power, int nx, int ny, int nz,
         int steps) {
  for (int s = 0; s < steps; s++) {
    for (int half = 0; half < 2; half++) {
      #pragma omp parallel for
      for (int j = 0; j < ny; j++) {
        for (int i = 0; i < nx; i++) {
          for (int k = 0; k < nz; k++) {
            int c = i + nx * (j + ny * k);
            float center = half == 0 ? tin[c] : tout[c];
            float west = i == 0 ? center : (half == 0 ? tin[c - 1] : tout[c - 1]);
            float east = i == nx - 1 ? center : (half == 0 ? tin[c + 1] : tout[c + 1]);
            float north = j == 0 ? center : (half == 0 ? tin[c - nx] : tout[c - nx]);
            float south = j == ny - 1 ? center : (half == 0 ? tin[c + nx] : tout[c + nx]);
            float bottom = k == 0 ? center : (half == 0 ? tin[c - nx * ny] : tout[c - nx * ny]);
            float top = k == nz - 1 ? center : (half == 0 ? tin[c + nx * ny] : tout[c + nx * ny]);
            float v = 0.4f * center
                    + 0.1f * (west + east + north + south + bottom + top)
                    + 0.05f * power[c];
            if (half == 0) tout[c] = v;
            else tin[c] = v;
          }
        }
      }
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "hotspot3D"
  ; description = "7-point 3-D thermal stencil with ping-pong buffers"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        let nz = 4 in
        let sz = n * n * nz in
        { Bench_def.buffers =
            [| Bench_def.fbuf 51 sz; Bench_def.fzero sz; Bench_def.fbuf 53 sz |]
        ; scalars = [ n; n; nz; 2 ]
        })
  ; test_size = 8
  ; paper_size = 512
  ; cost_scalars = (fun n -> [ n; n; 8; 10 ])
  ; n_buffers = 3
  }
