(* Rodinia cfd (euler3d): the compute_flux kernel — per-cell accumulation
   of fluxes over the four surrounding elements, five conservative
   variables per cell.  Flop-dense, irregular (indirect) loads, no
   synchronization. *)

let nvar = 5
let nnb = 4

let cuda_src =
  Printf.sprintf
    {|
__global__ void compute_flux(float* variables, int* neighbors,
                             float* normals, float* fluxes, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float density = variables[i * %d];
    float mx = variables[i * %d + 1];
    float my = variables[i * %d + 2];
    float energy = variables[i * %d + 4];
    float fd = 0.0f;
    float fx = 0.0f;
    float fy = 0.0f;
    float fe = 0.0f;
    for (int j = 0; j < %d; j++) {
      int nb = neighbors[i * %d + j];
      if (nb >= 0) {
        float nnx = normals[(i * %d + j) * 2];
        float nny = normals[(i * %d + j) * 2 + 1];
        float nd = variables[nb * %d];
        float nmx = variables[nb * %d + 1];
        float nmy = variables[nb * %d + 2];
        float ne = variables[nb * %d + 4];
        float p = 0.4f * (ne - 0.5f * (nmx * nmx + nmy * nmy) / nd);
        fd += nnx * nmx + nny * nmy;
        fx += nnx * (nmx * nmx / nd + p);
        fy += nny * (nmy * nmy / nd + p);
        fe += nnx * nmx * (ne + p) / nd + nny * nmy * (ne + p) / nd;
      }
    }
    fluxes[i * %d] = density + 0.1f * fd;
    fluxes[i * %d + 1] = mx + 0.1f * fx;
    fluxes[i * %d + 2] = my + 0.1f * fy;
    fluxes[i * %d + 4] = energy + 0.1f * fe;
    fluxes[i * %d + 3] = 0.0f;
  }
}
void run(float* variables, int* neighbors, float* normals, float* fluxes,
         int n) {
  compute_flux<<<(n + 63) / 64, 64>>>(variables, neighbors, normals,
                                      fluxes, n);
}
|}
    nvar nvar nvar nvar nnb nnb nnb nnb nvar nvar nvar nvar nvar nvar nvar
    nvar nvar

let omp_src =
  Printf.sprintf
    {|
void run(float* variables, int* neighbors, float* normals, float* fluxes,
         int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    float density = variables[i * %d];
    float mx = variables[i * %d + 1];
    float my = variables[i * %d + 2];
    float energy = variables[i * %d + 4];
    float fd = 0.0f;
    float fx = 0.0f;
    float fy = 0.0f;
    float fe = 0.0f;
    for (int j = 0; j < %d; j++) {
      int nb = neighbors[i * %d + j];
      if (nb >= 0) {
        float nnx = normals[(i * %d + j) * 2];
        float nny = normals[(i * %d + j) * 2 + 1];
        float nd = variables[nb * %d];
        float nmx = variables[nb * %d + 1];
        float nmy = variables[nb * %d + 2];
        float ne = variables[nb * %d + 4];
        float p = 0.4f * (ne - 0.5f * (nmx * nmx + nmy * nmy) / nd);
        fd += nnx * nmx + nny * nmy;
        fx += nnx * (nmx * nmx / nd + p);
        fy += nny * (nmy * nmy / nd + p);
        fe += nnx * nmx * (ne + p) / nd + nny * nmy * (ne + p) / nd;
      }
    }
    fluxes[i * %d] = density + 0.1f * fd;
    fluxes[i * %d + 1] = mx + 0.1f * fx;
    fluxes[i * %d + 2] = my + 0.1f * fy;
    fluxes[i * %d + 4] = energy + 0.1f * fe;
    fluxes[i * %d + 3] = 0.0f;
  }
}
|}
    nvar nvar nvar nvar nnb nnb nnb nnb nvar nvar nvar nvar nvar nvar nvar
    nvar nvar

let bench : Bench_def.t =
  { name = "cfd"
  ; description = "euler3d compute_flux: per-cell neighbor flux accumulation"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        let r = Bench_def.frand 61 in
        let variables =
          Array.init (n * nvar) (fun i ->
              if i mod nvar = 0 then 1.0 +. r () else r ())
        in
        let neighbors =
          Array.init (n * nnb) (fun i ->
              let cell = i / nnb and j = i mod nnb in
              match j with
              | 0 -> if cell = 0 then -1 else cell - 1
              | 1 -> if cell = n - 1 then -1 else cell + 1
              | 2 -> (cell + 7) mod n
              | _ -> (cell + n - 7) mod n)
        in
        { Bench_def.buffers =
            [| Interp.Mem.of_float_array variables
             ; Interp.Mem.of_int_array neighbors
             ; Bench_def.fbuf 67 (n * nnb * 2)
             ; Bench_def.fzero (n * nvar)
            |]
        ; scalars = [ n ]
        })
  ; test_size = 64
  ; paper_size = 97_000
  ; cost_scalars = (fun n -> [ n ])
  ; n_buffers = 4
  }
