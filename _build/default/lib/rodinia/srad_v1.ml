(* Rodinia srad_v1: speckle-reducing anisotropic diffusion, variant 1 —
   two stencil kernels per iteration (diffusion coefficient, then update)
   plus host-side statistics, no shared memory. *)

let cuda_src =
  {|
__global__ void srad1(float* img, float* c, float* dn, float* ds, float* dw,
                      float* de, int rows, int cols, float q0sqr) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < rows * cols) {
    int r = i / cols;
    int col = i - r * cols;
    float jc = img[i];
    float n = r == 0 ? 0.0f : img[i - cols] - jc;
    float s = r == rows - 1 ? 0.0f : img[i + cols] - jc;
    float w = col == 0 ? 0.0f : img[i - 1] - jc;
    float e = col == cols - 1 ? 0.0f : img[i + 1] - jc;
    float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
    float l = (n + s + w + e) / jc;
    float num = 0.5f * g2 - 0.0625f * l * l;
    float den = 1.0f + 0.25f * l;
    float qsqr = num / (den * den);
    den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
    float cval = 1.0f / (1.0f + den);
    if (cval < 0.0f) cval = 0.0f;
    if (cval > 1.0f) cval = 1.0f;
    c[i] = cval;
    dn[i] = n;
    ds[i] = s;
    dw[i] = w;
    de[i] = e;
  }
}

__global__ void srad2(float* img, float* c, float* dn, float* ds, float* dw,
                      float* de, int rows, int cols, float lambda) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < rows * cols) {
    int r = i / cols;
    int col = i - r * cols;
    float cn = c[i];
    float cs = r == rows - 1 ? c[i] : c[i + cols];
    float cw = c[i];
    float ce = col == cols - 1 ? c[i] : c[i + 1];
    float d = cn * dn[i] + cs * ds[i] + cw * dw[i] + ce * de[i];
    img[i] = img[i] + 0.25f * lambda * d;
  }
}

void run(float* img, float* c, float* dn, float* ds, float* dw, float* de,
         int rows, int cols, int iters) {
  for (int it = 0; it < iters; it++) {
    float total = 0.0f;
    float total2 = 0.0f;
    for (int i = 0; i < rows * cols; i++) {
      total += img[i];
      total2 += img[i] * img[i];
    }
    float mean = total / (float)(rows * cols);
    float var = total2 / (float)(rows * cols) - mean * mean;
    float q0sqr = var / (mean * mean);
    srad1<<<(rows * cols + 63) / 64, 64>>>(img, c, dn, ds, dw, de, rows,
                                           cols, q0sqr);
    srad2<<<(rows * cols + 63) / 64, 64>>>(img, c, dn, ds, dw, de, rows,
                                           cols, 0.5f);
  }
}
|}

let omp_src =
  {|
void run(float* img, float* c, float* dn, float* ds, float* dw, float* de,
         int rows, int cols, int iters) {
  for (int it = 0; it < iters; it++) {
    float total = 0.0f;
    float total2 = 0.0f;
    for (int i = 0; i < rows * cols; i++) {
      total += img[i];
      total2 += img[i] * img[i];
    }
    float mean = total / (float)(rows * cols);
    float var = total2 / (float)(rows * cols) - mean * mean;
    float q0sqr = var / (mean * mean);
    #pragma omp parallel for
    for (int i = 0; i < rows * cols; i++) {
      int r = i / cols;
      int col = i - r * cols;
      float jc = img[i];
      float n = r == 0 ? 0.0f : img[i - cols] - jc;
      float s = r == rows - 1 ? 0.0f : img[i + cols] - jc;
      float w = col == 0 ? 0.0f : img[i - 1] - jc;
      float e = col == cols - 1 ? 0.0f : img[i + 1] - jc;
      float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
      float l = (n + s + w + e) / jc;
      float num = 0.5f * g2 - 0.0625f * l * l;
      float den = 1.0f + 0.25f * l;
      float qsqr = num / (den * den);
      den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
      float cval = 1.0f / (1.0f + den);
      if (cval < 0.0f) cval = 0.0f;
      if (cval > 1.0f) cval = 1.0f;
      c[i] = cval;
      dn[i] = n;
      ds[i] = s;
      dw[i] = w;
      de[i] = e;
    }
    #pragma omp parallel for
    for (int i = 0; i < rows * cols; i++) {
      int r = i / cols;
      int col = i - r * cols;
      float cn = c[i];
      float cs = r == rows - 1 ? c[i] : c[i + cols];
      float cw = c[i];
      float ce = col == cols - 1 ? c[i] : c[i + 1];
      float d = cn * dn[i] + cs * ds[i] + cw * dw[i] + ce * de[i];
      img[i] = img[i] + 0.25f * 0.5f * d;
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "srad_v1"
  ; description = "speckle-reducing anisotropic diffusion, v1"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        let sz = n * n in
        let r = Bench_def.frand 131 in
        let img = Array.init sz (fun _ -> 1.0 +. r ()) in
        { Bench_def.buffers =
            [| Interp.Mem.of_float_array img
             ; Bench_def.fzero sz
             ; Bench_def.fzero sz
             ; Bench_def.fzero sz
             ; Bench_def.fzero sz
             ; Bench_def.fzero sz
            |]
        ; scalars = [ n; n; 2 ]
        })
  ; test_size = 12
  ; paper_size = 2048
  ; cost_scalars = (fun n -> [ n; n; 100 ])
  ; n_buffers = 6
  }
