(* Rodinia nw (Needleman-Wunsch): sequence alignment by wavefront dynamic
   programming.  The CUDA version walks anti-diagonals of 8x8 tiles; each
   tile is computed in shared memory with one barrier per in-tile
   diagonal.  The OpenMP version parallelizes each global anti-diagonal
   directly. *)

let tile = 8

let cuda_src =
  Printf.sprintf
    {|
__global__ void nw_kernel(int* score, int* ref, int n, int diag, int penalty) {
  __shared__ int s[%d + 1][%d + 1];
  int tx = threadIdx.x;
  int bx = blockIdx.x;
  int tiles = (n - 1) / %d;
  int tile_row = diag - bx;
  int tile_col = bx;
  if (tile_row >= 0 && tile_row < tiles && tile_col < tiles) {
    int row0 = tile_row * %d;
    int col0 = tile_col * %d;
    if (tx == 0) s[0][0] = score[row0 * (n) + col0];
    s[tx + 1][0] = score[(row0 + tx + 1) * n + col0];
    s[0][tx + 1] = score[row0 * n + col0 + tx + 1];
    __syncthreads();
    for (int d = 0; d < 2 * %d - 1; d++) {
      int i = tx + 1;
      int j = d - tx + 1;
      if (j >= 1 && j <= %d) {
        int m = s[i - 1][j - 1] + ref[(row0 + i) * n + col0 + j];
        int del = s[i - 1][j] - penalty;
        int ins = s[i][j - 1] - penalty;
        s[i][j] = max(m, max(del, ins));
      }
      __syncthreads();
    }
    score[(row0 + tx + 1) * n + col0 + tx + 1] = s[tx + 1][tx + 1];
    for (int j = 1; j <= %d; j++) {
      score[(row0 + tx + 1) * n + col0 + j] = s[tx + 1][j];
    }
  }
}
void run(int* score, int* ref, int n, int penalty) {
  int tiles = (n - 1) / %d;
  for (int diag = 0; diag < 2 * tiles - 1; diag++) {
    int width = diag < tiles ? diag + 1 : 2 * tiles - 1 - diag;
    nw_kernel<<<diag + 1, %d>>>(score, ref, n, diag, penalty);
  }
}
|}
    tile tile tile tile tile tile tile tile tile tile

let omp_src =
  {|
void run(int* score, int* ref, int n, int penalty) {
  for (int diag = 2; diag <= 2 * (n - 1); diag++) {
    #pragma omp parallel for
    for (int i = 1; i < n; i++) {
      int j = diag - i;
      if (j >= 1 && j < n) {
        int m = score[(i - 1) * n + j - 1] + ref[i * n + j];
        int del = score[(i - 1) * n + j] - penalty;
        int ins = score[i * n + j - 1] - penalty;
        int best = m;
        if (del > best) best = del;
        if (ins > best) best = ins;
        score[i * n + j] = best;
      }
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "nw"
  ; description = "Needleman-Wunsch wavefront alignment"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        (* n-1 must be a multiple of the tile size *)
        let r = Bench_def.frand 101 in
        let refm =
          Array.init (n * n) (fun _ -> int_of_float (r () *. 10.0) - 4)
        in
        let score = Array.make (n * n) 0 in
        for i = 0 to n - 1 do
          score.(i * n) <- -i;
          score.(i) <- -i
        done;
        { Bench_def.buffers =
            [| Interp.Mem.of_int_array score; Interp.Mem.of_int_array refm |]
        ; scalars = [ n; 2 ]
        })
  ; test_size = 17
  ; paper_size = 2049
  ; cost_scalars = (fun n -> [ n; 10 ])
  ; n_buffers = 2
  }
