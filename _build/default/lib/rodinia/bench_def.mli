(** Benchmark definitions shared by the Rodinia suite, the tests and the
    figure-regeneration benches: CUDA source, the hand-written OpenMP
    reference where Rodinia has one, a workload generator for
    interpreter-scale runs, and the argument shape for paper-scale
    cost-model runs. *)

type workload =
  { buffers : Interp.Mem.buffer array
  ; scalars : int list
  }

type t =
  { name : string
  ; description : string
  ; cuda_src : string
  ; omp_src : string option
  ; entry : string
  ; has_barrier : bool
  ; mk_workload : int -> workload
  ; test_size : int
  ; paper_size : int
  ; cost_scalars : int -> int list
  ; n_buffers : int
  }

val args_of_workload : workload -> Interp.Mem.rv list
val cost_args : t -> int -> Runtime.Cost.sval list

(** Deterministic pseudo-random generator in [0,1). *)
val frand : int -> unit -> float

val fbuf : int -> int -> Interp.Mem.buffer
val fzero : int -> Interp.Mem.buffer
val izero : int -> Interp.Mem.buffer

(** Order-sensitive digest of every buffer, for differential tests. *)
val checksum : workload -> float
