(* Rodinia srad_v2: the shared-memory variant — the image statistics are
   computed on the device with block-level tree reductions (barriers), and
   the stencils stage data through shared tiles.  The extra staging work
   is why the paper reports this variant slower than the native OpenMP
   code once transpiled. *)

let block = 64
let tile = 8

let cuda_src =
  Printf.sprintf
    {|
__global__ void reduce_stats(float* img, float* sums, float* sums2, int n) {
  __shared__ float bufa[%d];
  __shared__ float bufb[%d];
  int t = threadIdx.x;
  int i = blockIdx.x * %d + t;
  if (i < n) {
    bufa[t] = img[i];
    bufb[t] = img[i] * img[i];
  } else {
    bufa[t] = 0.0f;
    bufb[t] = 0.0f;
  }
  __syncthreads();
  for (int s = %d / 2; s > 0; s = s / 2) {
    if (t < s) {
      bufa[t] += bufa[t + s];
      bufb[t] += bufb[t + s];
    }
    __syncthreads();
  }
  if (t == 0) {
    sums[blockIdx.x] = bufa[0];
    sums2[blockIdx.x] = bufb[0];
  }
}

__global__ void srad_tile(float* img, float* out, int rows, int cols,
                          float q0sqr, float lambda) {
  __shared__ float t[%d][%d];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * %d + tx;
  int row = blockIdx.y * %d + ty;
  int i = row * cols + col;
  t[ty][tx] = img[i];
  __syncthreads();
  float jc = t[ty][tx];
  float n = row == 0 ? 0.0f
          : (ty == 0 ? img[i - cols] : t[ty - 1][tx]) - jc;
  float s = row == rows - 1 ? 0.0f
          : (ty == %d - 1 ? img[i + cols] : t[ty + 1][tx]) - jc;
  float w = col == 0 ? 0.0f
          : (tx == 0 ? img[i - 1] : t[ty][tx - 1]) - jc;
  float e = col == cols - 1 ? 0.0f
          : (tx == %d - 1 ? img[i + 1] : t[ty][tx + 1]) - jc;
  float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
  float l = (n + s + w + e) / jc;
  float num = 0.5f * g2 - 0.0625f * l * l;
  float den = 1.0f + 0.25f * l;
  float qsqr = num / (den * den);
  den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
  float cval = 1.0f / (1.0f + den);
  if (cval < 0.0f) cval = 0.0f;
  if (cval > 1.0f) cval = 1.0f;
  out[i] = img[i] + 0.25f * lambda * cval * (n + s + w + e);
}

void run(float* img, float* out, float* sums, float* sums2, int rows,
         int cols, int iters) {
  int n = rows * cols;
  int nblocks = (n + %d - 1) / %d;
  for (int it = 0; it < iters; it++) {
    reduce_stats<<<nblocks, %d>>>(img, sums, sums2, n);
    float total = 0.0f;
    float total2 = 0.0f;
    for (int b = 0; b < nblocks; b++) {
      total += sums[b];
      total2 += sums2[b];
    }
    float mean = total / (float)n;
    float var = total2 / (float)n - mean * mean;
    float q0sqr = var / (mean * mean);
    srad_tile<<<dim3(cols / %d, rows / %d), dim3(%d, %d)>>>(
        img, out, rows, cols, q0sqr, 0.5f);
    for (int i = 0; i < n; i++) {
      img[i] = out[i];
    }
  }
}
|}
    block block block block tile tile tile tile tile tile block block block
    tile tile tile tile

let omp_src =
  {|
void run(float* img, float* out, float* sums, float* sums2, int rows,
         int cols, int iters) {
  int n = rows * cols;
  for (int it = 0; it < iters; it++) {
    float total = 0.0f;
    float total2 = 0.0f;
    for (int i = 0; i < n; i++) {
      total += img[i];
      total2 += img[i] * img[i];
    }
    float mean = total / (float)n;
    float var = total2 / (float)n - mean * mean;
    float q0sqr = var / (mean * mean);
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
      int r = i / cols;
      int col = i - r * cols;
      float jc = img[i];
      float nn = r == 0 ? 0.0f : img[i - cols] - jc;
      float ss = r == rows - 1 ? 0.0f : img[i + cols] - jc;
      float ww = col == 0 ? 0.0f : img[i - 1] - jc;
      float ee = col == cols - 1 ? 0.0f : img[i + 1] - jc;
      float g2 = (nn * nn + ss * ss + ww * ww + ee * ee) / (jc * jc);
      float l = (nn + ss + ww + ee) / jc;
      float num = 0.5f * g2 - 0.0625f * l * l;
      float den = 1.0f + 0.25f * l;
      float qsqr = num / (den * den);
      den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
      float cval = 1.0f / (1.0f + den);
      if (cval < 0.0f) cval = 0.0f;
      if (cval > 1.0f) cval = 1.0f;
      out[i] = img[i] + 0.25f * 0.5f * cval * (nn + ss + ww + ee);
    }
    for (int i = 0; i < n; i++) {
      img[i] = out[i];
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "srad_v2"
  ; description = "SRAD v2: device-side reductions and shared-tile stencil"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        let sz = n * n in
        let r = Bench_def.frand 141 in
        let img = Array.init sz (fun _ -> 1.0 +. r ()) in
        let nblocks = (sz + block - 1) / block in
        { Bench_def.buffers =
            [| Interp.Mem.of_float_array img
             ; Bench_def.fzero sz
             ; Bench_def.fzero nblocks
             ; Bench_def.fzero nblocks
            |]
        ; scalars = [ n; n; 2 ]
        })
  ; test_size = 16
  ; paper_size = 2048
  ; cost_scalars = (fun n -> [ n; n; 100 ])
  ; n_buffers = 4
  }
