(* All Rodinia benchmarks, in the order the paper's figures list them. *)

let all : Bench_def.t list =
  [ Backprop.bench
  ; Bfs.bench
  ; Btree.bench
  ; Cfd.bench
  ; Hotspot.bench
  ; Hotspot3d.bench
  ; Lud.bench
  ; Myocyte.bench
  ; Nw.bench
  ; Particlefilter.bench
  ; Pathfinder.bench
  ; Srad_v1.bench
  ; Srad_v2.bench
  ; Streamcluster.bench
  ]

(* matmul is kept separate: it is the MCUDA comparison (Fig. 12), not part
   of the Rodinia suite figures. *)
let matmul = Matmul.bench

let find name =
  if name = "matmul" then Some matmul
  else List.find_opt (fun (b : Bench_def.t) -> b.name = name) all

let with_omp_ref = List.filter (fun (b : Bench_def.t) -> b.omp_src <> None) all
