(* Rodinia lud: blocked LU decomposition.  Three kernels per block step —
   diagonal (one block factorizes the pivot tile in shared memory with a
   barrier per pivot), perimeter (row/column panels), internal (trailing
   matmul-like update staged through shared memory).  The heavy use of
   shared-memory staging is why the paper reports the transpiled version
   trailing the plain OpenMP loop nest. *)

let b = 8

let cuda_src =
  Printf.sprintf
    {|
__global__ void lud_diagonal(float* m, int n, int offset) {
  __shared__ float tile[%d][%d];
  int tx = threadIdx.x;
  for (int i = 0; i < %d; i++) {
    tile[i][tx] = m[(offset + i) * n + offset + tx];
  }
  __syncthreads();
  for (int k = 0; k < %d - 1; k++) {
    if (tx > k) {
      tile[tx][k] = tile[tx][k] / tile[k][k];
      for (int j = k + 1; j < %d; j++) {
        tile[tx][j] = tile[tx][j] - tile[tx][k] * tile[k][j];
      }
    }
    __syncthreads();
  }
  for (int i = 0; i < %d; i++) {
    m[(offset + i) * n + offset + tx] = tile[i][tx];
  }
}

__global__ void lud_perimeter(float* m, int n, int offset) {
  __shared__ float diag[%d][%d];
  int bx = blockIdx.x;
  int tx = threadIdx.x;
  for (int i = 0; i < %d; i++) {
    diag[i][tx] = m[(offset + i) * n + offset + tx];
  }
  __syncthreads();
  int col0 = offset + (bx + 1) * %d;
  if (col0 < n) {
    for (int i = 1; i < %d; i++) {
      float s = m[(offset + i) * n + col0 + tx];
      for (int k = 0; k < i; k++) {
        s = s - diag[i][k] * m[(offset + k) * n + col0 + tx];
      }
      m[(offset + i) * n + col0 + tx] = s;
    }
    for (int i = 0; i < %d; i++) {
      float s = m[(col0 + tx) * n + offset + i];
      for (int k = 0; k < i; k++) {
        s = s - m[(col0 + tx) * n + offset + k] * diag[k][i];
      }
      m[(col0 + tx) * n + offset + i] = s / diag[i][i];
    }
  }
}

__global__ void lud_internal(float* m, int n, int offset) {
  __shared__ float row_tile[%d][%d];
  __shared__ float col_tile[%d][%d];
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row0 = offset + (by + 1) * %d;
  int col0 = offset + (bx + 1) * %d;
  if (row0 < n && col0 < n) {
    row_tile[ty][tx] = m[(offset + ty) * n + col0 + tx];
    col_tile[ty][tx] = m[(row0 + ty) * n + offset + tx];
    __syncthreads();
    float s = 0.0f;
    for (int k = 0; k < %d; k++) {
      s += col_tile[ty][k] * row_tile[k][tx];
    }
    m[(row0 + ty) * n + col0 + tx] -= s;
  }
}

void run(float* m, int n) {
  int nb = n / %d;
  for (int step = 0; step < nb; step++) {
    int offset = step * %d;
    lud_diagonal<<<1, %d>>>(m, n, offset);
    if (step < nb - 1) {
      lud_perimeter<<<nb - step - 1, %d>>>(m, n, offset);
      lud_internal<<<dim3(nb - step - 1, nb - step - 1), dim3(%d, %d)>>>(
          m, n, offset);
    }
  }
}
|}
    b b b b b b b b b b b b b b b b b b b b b b b b b

let omp_src =
  {|
void run(float* m, int n) {
  for (int k = 0; k < n - 1; k++) {
    #pragma omp parallel for
    for (int i = k + 1; i < n; i++) {
      m[i * n + k] = m[i * n + k] / m[k * n + k];
      for (int j = k + 1; j < n; j++) {
        m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j];
      }
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "lud"
  ; description = "blocked LU decomposition (diagonal/perimeter/internal)"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        (* diagonally dominant so the factorization is well-behaved *)
        let r = Bench_def.frand 111 in
        let m =
          Array.init (n * n) (fun i ->
              let row = i / n and col = i mod n in
              if row = col then 10.0 +. r () else r () *. 0.5)
        in
        { Bench_def.buffers = [| Interp.Mem.of_float_array m |]
        ; scalars = [ n ]
        })
  ; test_size = 16
  ; paper_size = 1024
  ; cost_scalars = (fun n -> [ n ])
  ; n_buffers = 1
  }
