(* Rodinia hotspot: 2-D thermal stencil with shared-memory tiling.  Each
   block stages its tile (plus ghost handling at the borders) into shared
   memory, synchronizes, and computes — the CUDA code does strictly more
   work than the plain OpenMP sweep, which is why the paper reports the
   transpiled version losing to the native one here. *)

let tile = 8

let cuda_src =
  Printf.sprintf
    {|
__global__ void hotspot_kernel(float* temp_in, float* temp_out,
                               float* power, int n) {
  __shared__ float t[%d][%d];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * %d + tx;
  int row = blockIdx.y * %d + ty;
  int c = row * n + col;
  t[ty][tx] = temp_in[c];
  __syncthreads();
  float center = t[ty][tx];
  float west = tx == 0 ? (col == 0 ? center : temp_in[c - 1]) : t[ty][tx - 1];
  float east = tx == %d - 1 ? (col == n - 1 ? center : temp_in[c + 1]) : t[ty][tx + 1];
  float north = ty == 0 ? (row == 0 ? center : temp_in[c - n]) : t[ty - 1][tx];
  float south = ty == %d - 1 ? (row == n - 1 ? center : temp_in[c + n]) : t[ty + 1][tx];
  temp_out[c] = center
              + 0.2f * (west + east + north + south - 4.0f * center)
              + 0.05f * power[c];
}
void run(float* temp_in, float* temp_out, float* power, int n, int steps) {
  for (int s = 0; s < steps; s++) {
    hotspot_kernel<<<dim3(n / %d, n / %d), dim3(%d, %d)>>>(
        temp_in, temp_out, power, n);
    hotspot_kernel<<<dim3(n / %d, n / %d), dim3(%d, %d)>>>(
        temp_out, temp_in, power, n);
  }
}
|}
    tile tile tile tile tile tile tile tile tile tile tile tile tile tile

let omp_src =
  {|
void run(float* temp_in, float* temp_out, float* power, int n, int steps) {
  for (int s = 0; s < steps; s++) {
    for (int half = 0; half < 2; half++) {
      #pragma omp parallel for
      for (int row = 0; row < n; row++) {
        for (int col = 0; col < n; col++) {
          int c = row * n + col;
          float center = half == 0 ? temp_in[c] : temp_out[c];
          float west = col == 0 ? center
                     : (half == 0 ? temp_in[c - 1] : temp_out[c - 1]);
          float east = col == n - 1 ? center
                     : (half == 0 ? temp_in[c + 1] : temp_out[c + 1]);
          float north = row == 0 ? center
                      : (half == 0 ? temp_in[c - n] : temp_out[c - n]);
          float south = row == n - 1 ? center
                      : (half == 0 ? temp_in[c + n] : temp_out[c + n]);
          float v = center
                  + 0.2f * (west + east + north + south - 4.0f * center)
                  + 0.05f * power[c];
          if (half == 0) temp_out[c] = v;
          else temp_in[c] = v;
        }
      }
    }
  }
}
|}

let bench : Bench_def.t =
  { name = "hotspot"
  ; description = "2-D thermal stencil with shared-memory tiling"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = true
  ; mk_workload =
      (fun n ->
        { Bench_def.buffers =
            [| Bench_def.fbuf 81 (n * n)
             ; Bench_def.fzero (n * n)
             ; Bench_def.fbuf 83 (n * n)
            |]
        ; scalars = [ n; 2 ]
        })
  ; test_size = 16
  ; paper_size = 1024
  ; cost_scalars = (fun n -> [ n; 30 ])
  ; n_buffers = 3
  }
