(* Benchmark definitions shared by the Rodinia suite, the test harness and
   the figure-regeneration benches.

   Each benchmark carries its CUDA source, the hand-written OpenMP
   reference where Rodinia has one (written with [#pragma omp parallel
   for]), a workload generator for small interpreter-scale runs, and the
   argument shape for paper-scale cost-model runs. *)

type workload =
  { buffers : Interp.Mem.buffer array
  ; scalars : int list
  }

type t =
  { name : string
  ; description : string
  ; cuda_src : string
  ; omp_src : string option
  ; entry : string (* host entry point; same signature in both sources *)
  ; has_barrier : bool
  ; mk_workload : int -> workload (* size -> fresh inputs *)
  ; test_size : int (* differential-test size (interpreted) *)
  ; paper_size : int (* cost-model size (analytic) *)
  ; cost_scalars : int -> int list (* size -> trailing int args *)
  ; n_buffers : int
  }

let args_of_workload (w : workload) : Interp.Mem.rv list =
  Array.to_list (Array.map (fun b -> Interp.Mem.Buf b) w.buffers)
  @ List.map (fun n -> Interp.Mem.Int n) w.scalars

let cost_args (b : t) (size : int) : Runtime.Cost.sval list =
  List.init b.n_buffers (fun _ -> Runtime.Cost.Unk)
  @ List.map (fun n -> Runtime.Cost.Ki n) (b.cost_scalars size)

(* Deterministic pseudo-random floats in [0,1). *)
let frand seed =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. 1073741824.0

let fbuf seed n =
  let r = frand seed in
  Interp.Mem.of_float_array (Array.init n (fun _ -> r ()))

let fzero n = Interp.Mem.of_float_array (Array.make n 0.0)
let izero n = Interp.Mem.of_int_array (Array.make n 0)

(* Digest of the outputs after a run: a stable checksum over every buffer
   (order-sensitive). *)
let checksum (w : workload) : float =
  Array.fold_left
    (fun acc b ->
      let c = Interp.Mem.float_contents b in
      Array.fold_left
        (fun (i, acc) x ->
          (i + 1, acc +. (x *. (1.0 +. (0.001 *. float_of_int (i mod 1000))))))
        (0, acc) c
      |> snd)
    0.0 w.buffers
