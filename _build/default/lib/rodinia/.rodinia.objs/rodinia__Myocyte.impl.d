lib/rodinia/myocyte.ml: Bench_def
