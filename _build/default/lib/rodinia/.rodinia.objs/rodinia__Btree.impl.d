lib/rodinia/btree.ml: Array Bench_def Interp Printf
