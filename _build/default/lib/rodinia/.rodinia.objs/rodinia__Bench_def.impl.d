lib/rodinia/bench_def.ml: Array Interp List Runtime
