lib/rodinia/registry.ml: Backprop Bench_def Bfs Btree Cfd Hotspot Hotspot3d List Lud Matmul Myocyte Nw Particlefilter Pathfinder Srad_v1 Srad_v2 Streamcluster
