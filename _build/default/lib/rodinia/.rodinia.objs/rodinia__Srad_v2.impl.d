lib/rodinia/srad_v2.ml: Array Bench_def Interp Printf
