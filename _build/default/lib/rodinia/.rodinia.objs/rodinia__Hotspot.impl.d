lib/rodinia/hotspot.ml: Bench_def Printf
