lib/rodinia/hotspot3d.ml: Bench_def
