lib/rodinia/nw.ml: Array Bench_def Interp Printf
