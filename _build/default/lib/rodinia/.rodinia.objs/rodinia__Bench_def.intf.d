lib/rodinia/bench_def.mli: Interp Runtime
