lib/rodinia/cfd.ml: Array Bench_def Interp Printf
