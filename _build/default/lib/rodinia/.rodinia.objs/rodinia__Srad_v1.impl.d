lib/rodinia/srad_v1.ml: Array Bench_def Interp
