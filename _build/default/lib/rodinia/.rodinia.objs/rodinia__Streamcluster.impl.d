lib/rodinia/streamcluster.ml: Bench_def
