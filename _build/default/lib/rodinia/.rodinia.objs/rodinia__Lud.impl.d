lib/rodinia/lud.ml: Array Bench_def Interp Printf
