lib/rodinia/matmul.ml: Bench_def Printf
