lib/rodinia/particlefilter.ml: Bench_def Printf
