lib/rodinia/pathfinder.ml: Array Bench_def Interp Printf
