lib/rodinia/backprop.ml: Bench_def Printf
