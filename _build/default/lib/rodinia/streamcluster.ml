(* Rodinia streamcluster: the pgain kernel — for every point, the cost
   delta of opening a candidate center (a dim-dimensional distance
   computation against the current assignment).  Bandwidth-bound, no
   synchronization. *)

let cuda_src =
  {|
__global__ void pgain_kernel(float* points, float* center, float* assign_cost,
                             float* delta, int n, int dim) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    float d = 0.0f;
    for (int j = 0; j < dim; j++) {
      float diff = points[tid * dim + j] - center[j];
      d += diff * diff;
    }
    float gain = assign_cost[tid] - d;
    if (gain > 0.0f) delta[tid] = gain;
    else delta[tid] = 0.0f;
  }
}
void run(float* points, float* center, float* assign_cost, float* delta,
         int n, int dim) {
  pgain_kernel<<<(n + 63) / 64, 64>>>(points, center, assign_cost, delta,
                                      n, dim);
}
|}

let omp_src =
  {|
void run(float* points, float* center, float* assign_cost, float* delta,
         int n, int dim) {
  #pragma omp parallel for
  for (int tid = 0; tid < n; tid++) {
    float d = 0.0f;
    for (int j = 0; j < dim; j++) {
      float diff = points[tid * dim + j] - center[j];
      d += diff * diff;
    }
    float gain = assign_cost[tid] - d;
    if (gain > 0.0f) delta[tid] = gain;
    else delta[tid] = 0.0f;
  }
}
|}

let dim = 8

let bench : Bench_def.t =
  { name = "streamcluster"
  ; description = "pgain distance kernel of streaming k-median"
  ; cuda_src
  ; omp_src = Some omp_src
  ; entry = "run"
  ; has_barrier = false
  ; mk_workload =
      (fun n ->
        { Bench_def.buffers =
            [| Bench_def.fbuf 31 (n * dim)
             ; Bench_def.fbuf 37 dim
             ; Bench_def.fbuf 41 n
             ; Bench_def.fzero n
            |]
        ; scalars = [ n; dim ]
        })
  ; test_size = 64
  ; paper_size = 65536
  ; cost_scalars = (fun n -> [ n; 32 ])
  ; n_buffers = 4
  }
