lib/cudafe/returns.ml: Ast List Option
