lib/cudafe/parser.ml: Array Ast Lexer List Printf String
