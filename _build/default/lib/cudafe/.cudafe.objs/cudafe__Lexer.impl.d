lib/cudafe/lexer.ml: Array Char List Printf String
