lib/cudafe/ast.ml:
