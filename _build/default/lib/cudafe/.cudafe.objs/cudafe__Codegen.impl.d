lib/cudafe/codegen.ml: Array Ast Builder Ir List Op Option Parser Printf Returns Types Value
