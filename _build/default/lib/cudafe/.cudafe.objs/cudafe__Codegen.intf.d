lib/cudafe/codegen.mli: Ast Ir
