(* Hand-written lexer for mini-CUDA.  Produces a token array with source
   positions so the parser can report precise errors. *)

type token =
  | INT of int
  | FLOAT of float * bool (* is_double (no 'f' suffix) *)
  | IDENT of string
  | KW of string (* keywords: if else for while do return types qualifiers *)
  | PUNCT of string (* operators and punctuation *)
  | PRAGMA of string (* rest of a #pragma line, e.g. "omp parallel for" *)
  | EOF

type postoken =
  { tok : token
  ; line : int
  ; col : int
  }

exception Error of string

let keywords =
  [ "if"; "else"; "for"; "while"; "do"; "return"; "void"; "bool"; "int"
  ; "long"; "float"; "double"; "unsigned"; "const"; "__global__"
  ; "__device__"; "__host__"; "__shared__"; "__restrict__"; "dim3"; "break"
  ; "continue"; "sizeof"; "static"
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation, longest first so greedy matching works.
   [<<<] and [>>>] are CUDA launch delimiters. *)
let puncts =
  [ "<<<"; ">>>"; "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "+="
  ; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>"; "++"; "--"; "->"
  ; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "&"; "|"; "^"; "~"; "?"
  ; ":"; ","; ";"; "("; ")"; "["; "]"; "{"; "}"; "."
  ]

let tokenize (src : string) : postoken array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  let starts_with s =
    let l = String.length s in
    !i + l <= n && String.sub src !i l = s
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if starts_with "#pragma" then begin
      let j = ref !i in
      while !j < n && src.[!j] <> '\n' do
        incr j
      done;
      let text = String.trim (String.sub src (!i + 7) (!j - !i - 7)) in
      emit (PRAGMA text);
      advance (!j - !i)
    end
    else if starts_with "//" then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if starts_with "/*" then begin
      advance 2;
      while !i < n && not (starts_with "*/") do
        advance 1
      done;
      if !i >= n then raise (Error "unterminated comment");
      advance 2
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word);
      advance (!j - !i)
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1])
    then begin
      let j = ref !i in
      let is_float = ref false in
      (* hex literals *)
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        j := !i + 2;
        while
          !j < n
          && (is_digit src.[!j]
              || (Char.lowercase_ascii src.[!j] >= 'a'
                  && Char.lowercase_ascii src.[!j] <= 'f'))
        do
          incr j
        done;
        emit (INT (int_of_string (String.sub src !i (!j - !i))))
      end
      else begin
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        if !j < n && src.[!j] = '.' then begin
          is_float := true;
          incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done
        end;
        if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
          is_float := true;
          incr j;
          if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done
        end;
        let text = String.sub src !i (!j - !i) in
        if !j < n && (src.[!j] = 'f' || src.[!j] = 'F') then begin
          incr j;
          emit (FLOAT (float_of_string text, false))
        end
        else if !is_float then emit (FLOAT (float_of_string text, true))
        else begin
          (* integer suffixes *)
          if !j < n && (src.[!j] = 'u' || src.[!j] = 'U') then incr j;
          if !j < n && (src.[!j] = 'l' || src.[!j] = 'L') then incr j;
          emit (INT (int_of_string text))
        end
      end;
      advance (!j - !i)
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
        emit (PUNCT p);
        advance (String.length p)
      | None ->
        raise
          (Error
             (Printf.sprintf "unexpected character %C at line %d col %d" c
                !line !col))
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT (f, _) -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | PRAGMA s -> "#pragma " ^ s
  | EOF -> "<eof>"
