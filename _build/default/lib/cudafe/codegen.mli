(** Lowering of the mini-CUDA AST into the parallel IR (Sec. III): a
    kernel launch becomes, at the host call site, a grid-level parallel
    loop containing per-block shared-memory allocations and a
    block-level parallel loop whose body is the kernel with
    [__syncthreads] as [polygeist.barrier].  Mutable C locals become
    rank-0 allocas ({!Core.Mem2reg} later promotes them, including across
    barriers); canonical [for] loops raise to [scf.for]; warp shuffle
    primitives are emulated through per-block scratch and barriers. *)

exception Error of string

(** Compile one function (non-kernel). *)
val gen_func : Ast.program -> Ast.func -> Ir.Op.op

(** Compile a program; kernels are inlined at their launch sites. *)
val gen_program : Ast.program -> Ir.Op.op

(** Parse + compile mini-CUDA source into a module. *)
val compile : string -> Ir.Op.op
