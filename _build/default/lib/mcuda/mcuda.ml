(* MCUDA baseline (Stratton et al., LCPC 2008) — the Fig. 12 comparator.

   MCUDA is an AST-level source-to-source tool: it applies "deep fission"
   at synchronization points directly on the C AST and emits new C code
   whose outermost (block) loop is parallelized; inner (thread) loops run
   serially inside each block iteration.  Because it runs *before* any
   compiler optimization, it cannot:

   - eliminate redundant barriers (no memory-effect analysis at AST level),
   - promote memory to registers across barriers,
   - minimize the data cached across fissions (it preserves every live
     value rather than computing a min-cut),
   - fuse or hoist the resulting parallel regions.

   Generic scalar optimizations still happen later, when the emitted C is
   compiled by a conventional compiler.

   We model MCUDA behaviourally on the shared IR with exactly that
   ordering: frontend output -> immediate fission (no pre-optimization,
   no min-cut) -> outer-loop-only OpenMP lowering (inner serialization,
   no region fusion/hoisting) -> only then generic cleanups. *)

let options : Core.Omp_lower.options =
  { Core.Omp_lower.inner = Core.Omp_lower.Inner_serial
  ; fuse = false
  ; hoist = false
  ; collapse = false
  }

(* Lower a module produced by the CUDA frontend the way MCUDA would. *)
let lower (m : Ir.Op.op) : unit =
  (* no barrier elimination, no mem2reg, no LICM before fission; the
     fission itself preserves every live value (no min-cut) *)
  Core.Cpuify.run ~use_mincut:false m;
  ignore (Core.Omp_lower.run ~options m);
  (* the "downstream C compiler": generic scalar optimizations, including
     ordinary (barrier-oblivious) memory-to-register promotion — by now
     fission has removed every barrier, so plain forwarding applies *)
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m

let compile (src : string) : Ir.Op.op =
  let m = Cudafe.Codegen.compile src in
  lower m;
  m
