(** The MCUDA baseline (Stratton et al., LCPC 2008) — the Fig. 12
    comparator: deep fission at synchronization points BEFORE any
    optimization (no barrier elimination, no cross-barrier mem2reg, no
    min-cut), outermost-loop-only parallelization, generic scalar
    cleanups only afterwards (the "downstream C compiler"). *)

val options : Core.Omp_lower.options

(** Lower a frontend-produced module the way MCUDA would. *)
val lower : Ir.Op.op -> unit

val compile : string -> Ir.Op.op
