(* Quickstart: the paper's Fig. 1 end to end.

   The [normalize] kernel calls an O(N) [sum] in every thread — O(N^2)
   total work.  We compile it, show the Sec. III representation, let the
   lock-step parallel LICM hoist the call out of both parallel loops
   (O(N) total), lower the barriers away, produce OpenMP, and run both
   versions to confirm identical results.

     dune exec examples/quickstart.exe *)

let src =
  {|
__device__ float sum(float* data, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}

__global__ void normalize(float* out, float* in, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  float val = sum(in, n);
  if (tid < n)
    out[tid] = in[tid] / val;
}

void launch(float* d_out, float* d_in, int n) {
  normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
|}

let run_normalize m n =
  let inp = Interp.Mem.of_float_array (Array.init n (fun i -> float_of_int (i + 1))) in
  let out = Interp.Mem.of_float_array (Array.make n 0.0) in
  let _, stats =
    Interp.Eval.run m "launch"
      [ Interp.Mem.Buf out; Interp.Mem.Buf inp; Interp.Mem.Int n ]
  in
  (Interp.Mem.float_contents out, stats)

let () =
  print_endline "=== 1. mini-CUDA source (the paper's Fig. 1) ===";
  print_endline src;
  let m = Cudafe.Codegen.compile src in
  print_endline "=== 2. Sec. III representation (kernel inlined at launch) ===";
  print_endline (Ir.Printer.op_to_string m);
  let n = 64 in
  let before, stats_before = run_normalize m n in
  Printf.printf "GPU-semantics run: %d ops executed (O(N^2): every thread sums)\n\n"
    stats_before.Interp.Eval.ops;
  print_endline "=== 3. after the optimization + barrier-lowering pipeline ===";
  Core.Cpuify.pipeline m;
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  print_endline (Ir.Printer.op_to_string m);
  let after, stats_after = run_normalize m n in
  Printf.printf
    "Lowered run: %d ops executed — the call to @sum was hoisted out of the\n\
     parallel loops by lock-step LICM, so the total work dropped from\n\
     O(N^2) to O(N).\n\n"
    stats_after.Interp.Eval.ops;
  let same = Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) before after in
  Printf.printf "Results identical: %b\n" same;
  let t threads =
    (Runtime.Cost.of_func Runtime.Machine.commodity ~threads m "launch"
       [ Runtime.Cost.Unk; Runtime.Cost.Unk; Runtime.Cost.Ki 1_000_000 ])
      .Runtime.Cost.seconds
  in
  Printf.printf
    "Simulated time at N=1M on the commodity model: 1 thread %.2e s, 32 threads %.2e s\n"
    (t 1) (t 32)
