(* Rodinia backprop (the paper's Fig. 9 kernel) through the whole system:
   barrier elimination proves the redundant __syncthreads away, mem2reg
   forwards the shared-memory round trip across the remaining barrier,
   fission + interchange lower the rest, and the transpiled program is
   compared against the original GPU semantics and against the
   hand-written OpenMP reference.

     dune exec examples/rodinia_backprop.exe *)

let count p m =
  let n = ref 0 in
  Ir.Op.iter (fun o -> if p o then incr n) m;
  !n

let barriers = count (fun o -> o.Ir.Op.kind = Ir.Op.Barrier)

let () =
  let b = Rodinia.Backprop.bench in
  Printf.printf "benchmark: %s — %s\n\n" b.name b.description;
  let m = Cudafe.Codegen.compile b.cuda_src in
  Printf.printf "barriers after frontend           : %d\n" (barriers m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  let r = Core.Mem2reg.run m in
  Printf.printf
    "mem2reg: %d loads forwarded (incl. across barriers), %d dead stores, %d dead allocas\n"
    r.Core.Mem2reg.forwarded_loads r.Core.Mem2reg.removed_stores
    r.Core.Mem2reg.removed_allocas;
  Core.Canonicalize.run m;
  Core.Cse.run m;
  let eliminated = Core.Barrier_elim.run m in
  Printf.printf "barrier elimination               : %d removed (the Fig. 9 redundant syncs)\n"
    eliminated;
  Core.Cpuify.run m;
  Printf.printf "barriers after fission/interchange: %d\n" (barriers m);
  let rep = Core.Omp_lower.run m in
  Printf.printf
    "omp lowering: %d regions fused, %d hoisted, %d collapsed, %d serialized\n\n"
    rep.Core.Omp_lower.fused rep.Core.Omp_lower.hoisted
    rep.Core.Omp_lower.collapsed rep.Core.Omp_lower.serialized;
  (* differential check against GPU semantics *)
  let checksum m =
    let w = b.mk_workload b.test_size in
    let _ = Interp.Eval.run ~team_size:4 m b.entry (Rodinia.Bench_def.args_of_workload w) in
    Rodinia.Bench_def.checksum w
  in
  let reference = checksum (Cudafe.Codegen.compile b.cuda_src) in
  let got = checksum m in
  Printf.printf "GPU-semantics checksum : %.6f\n" reference;
  Printf.printf "transpiled checksum    : %.6f  (match: %b)\n\n" got
    (Float.abs (reference -. got) < 1e-3);
  (* simulated comparison with the hand-written OpenMP version *)
  let args = Rodinia.Bench_def.cost_args b b.paper_size in
  let t m = (Runtime.Cost.of_func Runtime.Machine.commodity ~threads:32 m b.entry args).Runtime.Cost.seconds in
  let omp = Cudafe.Codegen.compile (Option.get b.omp_src) in
  Core.Canonicalize.run omp;
  Core.Cse.run omp;
  ignore (Core.Mem2reg.run omp);
  Core.Canonicalize.run omp;
  ignore (Core.Omp_lower.run omp);
  Printf.printf "simulated time, 32 threads (commodity model):\n";
  Printf.printf "  transpiled CUDA      : %.3e s\n" (t m);
  Printf.printf "  hand-written OpenMP  : %.3e s\n" (t omp)
