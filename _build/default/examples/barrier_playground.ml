(* A tour of the barrier memory semantics (Sec. III-A / IV-A): three small
   kernels whose synchronization the analysis judges differently, printed
   with the verdicts and the resulting lowered code shapes.

     dune exec examples/barrier_playground.exe *)

let count_barriers m =
  let n = ref 0 in
  Ir.Op.iter (fun o -> if o.Ir.Op.kind = Ir.Op.Barrier then incr n) m;
  !n

let case ~name ~expect src =
  Printf.printf "--- %s ---\n%s\n" name src;
  let m = Cudafe.Codegen.compile src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  let before = count_barriers m in
  let eliminated = Core.Barrier_elim.run m in
  Printf.printf "barriers: %d, eliminated as redundant: %d  (%s)\n\n" before
    eliminated expect

let () =
  (* Fig. 5: the same thread writes and reads A[tid] — the barrier's
     effect set excludes the current thread, so it is redundant. *)
  case ~name:"injective per-thread access (Fig. 5)"
    ~expect:"expected: 1 eliminated — A[tid] is injective in the thread id"
    {|
__global__ void k(float* A) {
  int t = threadIdx.x;
  A[t] = A[t] * 2.0f;
  __syncthreads();
  A[t] = A[t] + 1.0f;
}
void launch(float* A) { k<<<1, 32>>>(A); }
|};
  (* the offset-by-one variant the paper contrasts it with *)
  case ~name:"offset-by-one access"
    ~expect:"expected: 0 eliminated — A[t+1] is written by another thread"
    {|
__global__ void k(float* A) {
  int t = threadIdx.x;
  A[t] = A[t] * 2.0f;
  __syncthreads();
  if (t < 31) A[t] = A[t + 1];
}
void launch(float* A) { k<<<1, 32>>>(A); }
|};
  (* disjoint arrays before/after: nothing to order *)
  case ~name:"disjoint arrays"
    ~expect:"expected: 1 eliminated — no conflicting location across the barrier"
    {|
__global__ void k(float* A, float* B) {
  int t = threadIdx.x;
  A[t] = 1.0f;
  __syncthreads();
  B[t] = 2.0f;
}
void launch(float* A, float* B) { k<<<1, 32>>>(A, B); }
|};
  (* a genuinely required barrier survives and gets lowered by fission *)
  let src =
    {|
__global__ void k(float* A, float* B) {
  int t = threadIdx.x;
  A[t] = B[t] * 2.0f;
  __syncthreads();
  B[t] = A[(t + 1) % 32];
}
void launch(float* A, float* B) { k<<<1, 32>>>(A, B); }
|}
  in
  Printf.printf "--- required barrier: lowered by parallel loop fission ---\n";
  let m = Cudafe.Codegen.compile src in
  Core.Cpuify.pipeline m;
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  Printf.printf "%s\n" (Ir.Printer.op_to_string m);
  Printf.printf "remaining polygeist.barrier ops: %d (the omp.barrier above is the\n"
    (count_barriers m);
  Printf.printf "team-level join the fission produced)\n"
