examples/resnet_infer.mli:
