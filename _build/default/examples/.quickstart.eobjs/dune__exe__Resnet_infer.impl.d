examples/resnet_infer.ml: List Moccuda Option Printf Runtime Tensor Tensorlib
