examples/rodinia_backprop.mli:
