examples/quickstart.mli:
