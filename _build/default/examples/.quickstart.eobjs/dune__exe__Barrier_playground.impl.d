examples/barrier_playground.ml: Core Cudafe Ir Printf
