examples/rodinia_backprop.ml: Core Cudafe Float Interp Ir Option Printf Rodinia Runtime
