examples/quickstart.ml: Array Core Cudafe Float Interp Ir Printf Runtime
