examples/barrier_playground.mli:
