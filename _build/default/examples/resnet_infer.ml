(* MocCUDA in action: a miniature ResNet-style network runs identically
   under all four backends (including the one whose NLL-loss kernel is the
   actual CUDA source transpiled by this repository's own pipeline), the
   CUDART emulation answers PyTorch-style runtime queries, and the Fig. 15
   throughput sweep runs on the A64FX machine model.

     dune exec examples/resnet_infer.exe *)

open Tensorlib

let () =
  (* 1. the CUDA runtime emulation PyTorch talks to *)
  let st = Moccuda.Cudart.create () in
  let _, ndev = Moccuda.Cudart.cuda_get_device_count st in
  let _, props = Moccuda.Cudart.cuda_get_device_properties st 0 in
  let p = Option.get props in
  Printf.printf "CUDART emulation: %d virtual devices (one per NUMA domain)\n"
    ndev;
  Printf.printf "device 0 properties (MocCUDA's dump): %s, %d SMs, cc %d.%d\n\n"
    p.Moccuda.Cudart.prop_name p.Moccuda.Cudart.multi_processor_count
    (fst p.Moccuda.Cudart.compute_capability)
    (snd p.Moccuda.Cudart.compute_capability);
  (* 2. one forward pass, every backend, identical numerics *)
  let model = Moccuda.Resnet.mini_model ~channels:8 in
  let images = Tensor.rand 42 [| 4; 3; 16; 16 |] in
  let targets = [| 1; 5; 2; 9 |] in
  Printf.printf "mini-ResNet forward loss per backend (must agree):\n";
  List.iter
    (fun b ->
      let loss = Moccuda.Resnet.mini_forward b model ~images ~targets in
      Printf.printf "  %-18s : %.6f%s\n" (Moccuda.Backends.name b) loss
        (match b with
         | Moccuda.Backends.Moccuda_polygeist ->
           "   <- NLL loss computed by the transpiled CUDA kernel"
         | _ -> ""))
    Moccuda.Backends.all;
  (* 3. the Fig. 15 sweep *)
  Printf.printf
    "\nResNet-50 synthetic training throughput (A64FX model, 12 threads):\n";
  List.iter
    (fun batch ->
      Printf.printf "  batch %2d:" batch;
      List.iter
        (fun b ->
          Printf.printf "  %s %6.2f img/s"
            (Moccuda.Backends.name b)
            (Moccuda.Resnet.throughput b Runtime.Machine.a64fx ~batch
               ~threads:12))
        [ Moccuda.Backends.One_dnn; Moccuda.Backends.Moccuda_polygeist ];
      print_newline ())
    [ 1; 4; 8; 12 ]
