(* MocCUDA in action: a miniature ResNet-style network runs identically
   under all four backends (including the one whose NLL-loss kernel is the
   actual CUDA source transpiled by this repository's own pipeline), then
   again through the compiled kernel tier — every tensor op a transpiled
   mini-CUDA kernel on the multicore engine, bit-identical to the
   reference, with the cost model's prediction next to the measured
   time.  The CUDART emulation answers PyTorch-style runtime queries,
   and the Fig. 15 throughput sweep runs on the A64FX machine model.

     dune exec examples/resnet_infer.exe *)

open Tensorlib

let () =
  (* 1. the CUDA runtime emulation PyTorch talks to *)
  let st = Moccuda.Cudart.create () in
  let _, ndev = Moccuda.Cudart.cuda_get_device_count st in
  let _, props = Moccuda.Cudart.cuda_get_device_properties st 0 in
  let p = Option.get props in
  Printf.printf "CUDART emulation: %d virtual devices (one per NUMA domain)\n"
    ndev;
  Printf.printf "device 0 properties (MocCUDA's dump): %s, %d SMs, cc %d.%d\n\n"
    p.Moccuda.Cudart.prop_name p.Moccuda.Cudart.multi_processor_count
    (fst p.Moccuda.Cudart.compute_capability)
    (snd p.Moccuda.Cudart.compute_capability);
  (* 2. one forward pass, every backend, identical numerics *)
  let model = Moccuda.Resnet.mini_model ~channels:8 in
  let images = Tensor.rand 42 [| 4; 3; 16; 16 |] in
  let targets = [| 1; 5; 2; 9 |] in
  Printf.printf "mini-ResNet forward loss per backend (must agree):\n";
  List.iter
    (fun b ->
      let loss = Moccuda.Resnet.mini_forward b model ~images ~targets in
      Printf.printf "  %-18s : %.6f%s\n" (Moccuda.Backends.name b) loss
        (match b with
         | Moccuda.Backends.Moccuda_polygeist ->
           "   <- NLL loss computed by the transpiled CUDA kernel"
         | _ -> ""))
    Moccuda.Backends.all;
  (* 3. the kernel tier: the same forward pass where every tensor op is
     a transpiled mini-CUDA kernel run on the multicore engine, with the
     analytic cost model's prediction printed next to the measured time *)
  Printf.printf
    "\nCompiled kernel tier (every op transpiled through the full pipeline):\n";
  let batch = 2 and chw = 8 in
  let small_images = Tensor.rand 43 [| batch; 3; chw; chw |] in
  let small_targets = [| 1; 5 |] in
  let reference =
    Moccuda.Resnet.mini_forward Moccuda.Backends.Moccuda_expert model
      ~images:small_images ~targets:small_targets
  in
  let km = Moccuda.Kmgr.create ~domains:4 () in
  let ar = Moccuda.Arena.create () in
  let cm = Moccuda.Resnet.mini_compiled model ~batch ~hw:chw in
  let images_b = Moccuda.Graph.buffer_of_tensor small_images in
  let targets_b = Moccuda.Graph.buffer_of_ints small_targets in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run () =
    Moccuda.Resnet.run_mini_compiled cm km ar ~images:images_b
      ~targets:targets_b
  in
  let cold_loss, cold_s = time run in
  let warm_loss, warm_s = time run in
  let predicted =
    Tensorlib.Opcost.seconds Runtime.Machine.a64fx ~threads:4
      (Moccuda.Resnet.mini_cost cm)
  in
  Printf.printf "  loss (compiled kernels) : %.6f\n" cold_loss;
  Printf.printf "  loss (Tensorlib ref)    : %.6f  -> %s\n" reference
    (if
       Int64.equal
         (Int64.bits_of_float cold_loss)
         (Int64.bits_of_float reference)
       && Int64.equal
            (Int64.bits_of_float warm_loss)
            (Int64.bits_of_float reference)
     then "bit-identical"
     else "MISMATCH");
  Printf.printf
    "  cold pass   : %8.4f s measured (compiles every kernel)\n" cold_s;
  Printf.printf
    "  warm pass   : %8.4f s measured (every launch a cache hit)\n" warm_s;
  Printf.printf
    "  cost model  : %8.2e s predicted on the A64FX model, 4 threads\n"
    predicted;
  Printf.printf "  %s\n"
    (Moccuda.Kmgr.stats_to_string (Moccuda.Kmgr.stats km));
  (* 4. the Fig. 15 sweep *)
  Printf.printf
    "\nResNet-50 synthetic training throughput (A64FX model, 12 threads):\n";
  List.iter
    (fun batch ->
      Printf.printf "  batch %2d:" batch;
      List.iter
        (fun b ->
          Printf.printf "  %s %6.2f img/s"
            (Moccuda.Backends.name b)
            (Moccuda.Resnet.throughput b Runtime.Machine.a64fx ~batch
               ~threads:12))
        [ Moccuda.Backends.One_dnn; Moccuda.Backends.Moccuda_polygeist ];
      print_newline ())
    [ 1; 4; 8; 12 ]
