(* Figure-regeneration harness: one entry per table/figure of the paper's
   evaluation (Sec. VI).  Functional results come from real execution
   (the interpreter); timing comes from the analytic machine model, since
   this container has a single core (see DESIGN.md).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig12      -- MCUDA comparison
     dune exec bench/main.exe fig13_ablate
     dune exec bench/main.exe fig13_speedup
     dune exec bench/main.exe fig14_scaling
     dune exec bench/main.exe fig15_resnet
     dune exec bench/main.exe speedup    -- real wall-clock scaling: serial
                                            interp vs the multicore runtime
                                            (writes BENCH_4.json; flags:
                                            --min-serial-ms --reps --domains
                                            --out)
     dune exec bench/main.exe perf-smoke -- tiny CI tripwire (exit 1 on
                                            checksum mismatch, warm frame
                                            allocation, or 4d > 2x 1d)
     dune exec bench/main.exe moccuda    -- kernel-tier forward pass: per-op
                                            and whole-network wall-clock at
                                            1/2/4 domains, cold vs warm
                                            cache, loss bitwise vs the
                                            Tensorlib reference (writes
                                            BENCH_6.json; flags: --reps
                                            --out)
     dune exec bench/main.exe fuzz       -- differential-fuzzer throughput:
                                            cases/min through the full
                                            oracle, divergences found
                                            (flags: --seed --cases)
     dune exec bench/main.exe repair     -- auto-repair search throughput:
                                            racy mutants repaired, candidates
                                            tried per accepted edit, median
                                            search time (flags: --seed --racy)
     dune exec bench/main.exe serve      -- compile-service throughput: jobs/
                                            sec, p50/p99 cold vs cache-warm
                                            latency and Overloaded rejections
                                            under a hot/cold replay with 1%
                                            injected faults (writes
                                            BENCH_5.json; flags: --jobs
                                            --fault-pct --queue-cap --out)
     dune exec bench/main.exe micro      -- bechamel compiler micro-benches *)

let commodity = Runtime.Machine.commodity
let a64fx = Runtime.Machine.a64fx

(* --- pipeline variants --- *)

(* Figure builds run under the fault-tolerant pass manager: a stage that
   dies degrades instead of killing the whole figure run, and every
   recovery is recorded here and summarized at the end ("which
   benchmarks degraded and how far"). *)
let degradations : (string * string) list ref = ref []

let deepest_rung (r : Core.Passmgr.report) : string =
  if r.Core.Passmgr.fell_back then "no-opt-fallback"
  else if
    List.exists
      (fun (d : Core.Passmgr.degradation) ->
        d.Core.Passmgr.recovered_to = Core.Passmgr.No_mincut)
      r.Core.Passmgr.degradations
  then "no-mincut"
  else if r.Core.Passmgr.degradations <> [] then "skip"
  else "full"

let build_polygeist ?(name = "?") ?(cpuify = Core.Cpuify.default_options)
    ?(omp = Core.Omp_lower.default_options) ?(affine = false) (src : string) :
  Ir.Op.op =
  let m = Cudafe.Codegen.compile src in
  if affine then ignore (Core.Affine_opt.run m);
  (match Core.Passmgr.run_pipeline ~options:cpuify m with
   | Ok report ->
     if Core.Passmgr.degraded report then
       degradations :=
         ( name,
           Printf.sprintf "degraded to %s (%d stage failure(s))"
             (deepest_rung report)
             (List.length report.Core.Passmgr.failures) )
         :: !degradations
   | Error (_, f) ->
     failwith
       ("pipeline unrecoverable for " ^ name ^ ": "
        ^ Core.Passmgr.failure_to_string f));
  ignore (Core.Omp_lower.run ~options:omp m);
  Core.Canonicalize.run m;
  m

let print_degradations () =
  match List.rev !degradations with
  | [] -> ()
  | l ->
    Printf.printf
      "\nPass-manager degradations during figure builds (expected: none):\n";
    List.iter (fun (name, what) -> Printf.printf "  %-16s %s\n" name what) l

let build_omp_reference (src : string) : Ir.Op.op =
  let m = Cudafe.Codegen.compile src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  (* a conventional compiler: no parallel-region fusion or hoisting *)
  ignore
    (Core.Omp_lower.run
       ~options:
         { Core.Omp_lower.inner = Core.Omp_lower.Inner_parallel
         ; fuse = false
         ; hoist = false
         ; collapse = false
         }
       m);
  Core.Canonicalize.run m;
  m

let seconds ?default_trip (machine : Runtime.Machine.t) ~(threads : int)
    (m : Ir.Op.op) (entry : string) (args : Runtime.Cost.sval list) : float =
  (Runtime.Cost.of_func ?default_trip machine ~threads m entry args)
    .Runtime.Cost.seconds

let geomean = function
  | [] -> nan
  | l ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 l
         /. float_of_int (List.length l))

let pr fmt = Printf.printf fmt

let header title =
  pr "\n================================================================\n";
  pr "%s\n" title;
  pr "================================================================\n"

(* --- Fig. 12: matmul vs MCUDA --- *)

let fig12 () =
  header
    "Fig. 12 — matmul: MCUDA vs PolygeistInnerPar vs PolygeistInnerSer\n\
     (simulated runtime on the commodity machine model)";
  let b = Rodinia.Registry.matmul in
  let mcuda = Mcuda.compile b.cuda_src in
  let inner_par =
    build_polygeist ~name:"matmul" ~omp:Core.Omp_lower.inner_par_options
      b.cuda_src
  in
  let inner_ser = build_polygeist ~name:"matmul" b.cuda_src in
  let sizes = [ 128; 256; 512; 1024; 2048 ] in
  let threads = [ 1; 2; 4; 8; 12; 16; 20; 24 ] in
  let time variant n t =
    let args = Rodinia.Bench_def.cost_args b n in
    match variant with
    | `Mcuda ->
      (* MCUDA's unoptimized fission leaves helper-published loop bounds
         the static evaluator cannot see through: supply the actual tile
         trip count *)
      seconds ~default_trip:(n / 8) commodity ~threads:t mcuda b.entry args
    | `Inner_par -> seconds commodity ~threads:t inner_par b.entry args
    | `Inner_ser -> seconds commodity ~threads:t inner_ser b.entry args
  in
  pr "\nLeft: average runtime (s) vs thread count (mean over sizes)\n";
  pr "%8s %12s %12s %12s\n" "threads" "MCUDA" "InnerPar" "InnerSer";
  List.iter
    (fun t ->
      let avg v =
        List.fold_left (fun acc n -> acc +. time v n t) 0.0 sizes
        /. float_of_int (List.length sizes)
      in
      pr "%8d %12.4e %12.4e %12.4e\n" t (avg `Mcuda) (avg `Inner_par)
        (avg `Inner_ser))
    threads;
  pr "\nRight: average runtime (s) vs matrix size (mean over threads)\n";
  pr "%8s %12s %12s %12s\n" "size" "MCUDA" "InnerPar" "InnerSer";
  List.iter
    (fun n ->
      let avg v =
        List.fold_left (fun acc t -> acc +. time v n t) 0.0 threads
        /. float_of_int (List.length threads)
      in
      pr "%8d %12.4e %12.4e %12.4e\n" n (avg `Mcuda) (avg `Inner_par)
        (avg `Inner_ser))
    sizes;
  let over v1 v2 =
    geomean
      (List.concat_map
         (fun n -> List.map (fun t -> time v1 n t /. time v2 n t) threads)
         sizes)
  in
  pr "\nSummary (geomean over the full grid):\n";
  pr "  InnerSer speedup over MCUDA : %.1f%%  (paper: 14.9%%)\n"
    ((over `Mcuda `Inner_ser -. 1.0) *. 100.0);
  pr "  InnerPar vs MCUDA           : %+.1f%%  (paper: within 1.3%%)\n"
    ((over `Mcuda `Inner_par -. 1.0) *. 100.0)

(* --- Fig. 13 (left): ablations --- *)

let fig13_ablate () =
  header
    "Fig. 13 (left) — ablation: speedup of each optimization, 32 threads\n\
     (mincut: min-cut caching; openmpopt: region fusion/hoist/collapse;\n\
     affine: unrolling loops that contain synchronization)";
  let threads = 32 in
  let results = ref [] in
  pr "\n%16s %10s %10s %10s  (barrier benchmarks marked *)\n" "benchmark"
    "mincut" "openmpopt" "affine";
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let args = Rodinia.Bench_def.cost_args b b.paper_size in
      let t build =
        let m = build b.cuda_src in
        seconds commodity ~threads m b.entry args
      in
      let base = t (fun s -> build_polygeist ~name:b.name s) in
      let no_mincut =
        t (fun s ->
            build_polygeist ~name:b.name
              ~cpuify:{ Core.Cpuify.default_options with Core.Cpuify.opt_mincut = false }
              s)
      in
      (* region fusion/hoisting matters most where parallel regions are
         plentiful: measure it on the nested-parallel pipeline, like the
         paper's InnerPar-based ablation *)
      let ompopt_base =
        t (fun s ->
            build_polygeist ~name:b.name
              ~omp:Core.Omp_lower.inner_par_options s)
      in
      let no_ompopt =
        t (fun s ->
            build_polygeist ~name:b.name
              ~omp:
                { Core.Omp_lower.inner_par_options with
                  Core.Omp_lower.fuse = false
                ; hoist = false
                ; collapse = false
                }
              s)
      in
      let with_affine = t (fun s -> build_polygeist ~name:b.name ~affine:true s) in
      let s_mincut = no_mincut /. base in
      let s_ompopt = no_ompopt /. ompopt_base in
      let s_affine = base /. with_affine in
      results := (b, s_mincut, s_ompopt, s_affine) :: !results;
      pr "%15s%s %9.2fx %9.2fx %9.2fx\n" b.name
        (if b.has_barrier then "*" else " ")
        s_mincut s_ompopt s_affine)
    Rodinia.Registry.all;
  let results = List.rev !results in
  let gm f sel = geomean (List.map f (List.filter sel results)) in
  pr "\nGeomeans:\n";
  pr "  mincut (barrier benchmarks) : %+.1f%%  (paper: +4.1%%)\n"
    ((gm (fun (_, s, _, _) -> s) (fun ((b : Rodinia.Bench_def.t), _, _, _) -> b.has_barrier)
      -. 1.0)
     *. 100.0);
  pr "  openmpopt (all)             : %+.1f%%  (paper: +8.9%%)\n"
    ((gm (fun (_, _, s, _) -> s) (fun _ -> true) -. 1.0) *. 100.0);
  pr "  affine (all)                : %+.1f%%  (paper: +4.6%%)\n"
    ((gm (fun (_, _, _, s) -> s) (fun _ -> true) -. 1.0) *. 100.0);
  (match
     List.find_opt
       (fun ((b : Rodinia.Bench_def.t), _, _, _) -> b.name = "backprop")
       results
   with
   | Some (_, _, _, s) ->
     pr "  affine on backprop          : %.2fx  (paper: 2.6x)\n" s
   | None -> ())

(* --- Fig. 13 (right): transpiled CUDA vs native OpenMP --- *)

let fig13_speedup () =
  header
    "Fig. 13 (right) — speedup of transpiled CUDA over native OpenMP\n\
     (32 threads, commodity machine model; >1 means transpiled wins)";
  let threads = 32 in
  let ser = ref [] and par = ref [] in
  pr "\n%16s %12s %12s\n" "benchmark" "InnerSer" "InnerPar";
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      match b.omp_src with
      | None -> ()
      | Some omp_src ->
        let args = Rodinia.Bench_def.cost_args b b.paper_size in
        let t_omp =
          seconds commodity ~threads (build_omp_reference omp_src) b.entry args
        in
        let t_ser =
          seconds commodity ~threads
            (build_polygeist ~name:b.name b.cuda_src)
            b.entry args
        in
        let t_par =
          seconds commodity ~threads
            (build_polygeist ~name:b.name
               ~omp:Core.Omp_lower.inner_par_options b.cuda_src)
            b.entry args
        in
        ser := (t_omp /. t_ser) :: !ser;
        par := (t_omp /. t_par) :: !par;
        pr "%16s %11.2fx %11.2fx\n" b.name (t_omp /. t_ser) (t_omp /. t_par))
    Rodinia.Registry.all;
  pr "\nGeomean speedup over native OpenMP:\n";
  pr "  with inner serialization    : %+.1f%%  (paper: +76%%)\n"
    ((geomean !ser -. 1.0) *. 100.0);
  pr "  without inner serialization : %+.1f%%  (paper: +43.7%%)\n"
    ((geomean !par -. 1.0) *. 100.0)

(* --- Fig. 14: scaling --- *)

let fig14_scaling () =
  header
    "Fig. 14 — thread scaling (speedup over 1 thread), commodity model";
  let threads = [ 1; 2; 4; 8; 16; 32 ] in
  pr "\n%16s | %s | %s\n" "benchmark"
    "transpiled CUDA: speedup @ 1 2 4 8 16 32"
    "native OpenMP @ 32";
  let cuda32_all = ref [] in
  let cuda32_with_omp = ref [] in
  let omp32 = ref [] in
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let args = Rodinia.Bench_def.cost_args b b.paper_size in
      let cuda = build_polygeist ~name:b.name b.cuda_src in
      let t1 = seconds commodity ~threads:1 cuda b.entry args in
      let speedups =
        List.map
          (fun t -> t1 /. seconds commodity ~threads:t cuda b.entry args)
          threads
      in
      let s32 = List.nth speedups (List.length speedups - 1) in
      cuda32_all := s32 :: !cuda32_all;
      let omp_part =
        match b.omp_src with
        | None -> "      (no OpenMP version)"
        | Some src ->
          let m = build_omp_reference src in
          let o1 = seconds commodity ~threads:1 m b.entry args in
          let o32 = o1 /. seconds commodity ~threads:32 m b.entry args in
          omp32 := o32 :: !omp32;
          cuda32_with_omp := s32 :: !cuda32_with_omp;
          Printf.sprintf "%.1fx" o32
      in
      pr "%16s | %s | %s\n" b.name
        (String.concat " "
           (List.map (fun s -> Printf.sprintf "%5.1fx" s) speedups))
        omp_part)
    Rodinia.Registry.all;
  pr "\nGeomean speedup at 32 threads:\n";
  pr "  transpiled CUDA, all tests        : %.1fx  (paper: 16.1x w/o inner ser., 14.9x with)\n"
    (geomean !cuda32_all);
  pr "  transpiled CUDA, w/ OpenMP version: %.1fx  (paper: 14.0x / 12.5x)\n"
    (geomean !cuda32_with_omp);
  pr "  native OpenMP                     : %.1fx  (paper: 7.1x)\n"
    (geomean !omp32)

(* --- Fig. 15: ResNet-50 on the A64FX model --- *)

let fig15_resnet () =
  header
    "Fig. 15 — ResNet-50 synthetic training throughput on the A64FX model";
  let batches = [ 1; 2; 3; 4; 6; 8; 10; 12 ] in
  let threads = [ 1; 2; 4; 8; 12; 16; 32; 48 ] in
  pr
    "\nLeft: heatmap of throughput ratio MocCUDA+Polygeist / oneDNN\n\
     (rows: batch size; columns: threads)\n\n";
  pr "%6s" "batch";
  List.iter (fun t -> pr "%7d" t) threads;
  pr "\n";
  let ratios = ref [] in
  List.iter
    (fun batch ->
      pr "%6d" batch;
      List.iter
        (fun t ->
          let moc =
            Moccuda.Resnet.throughput Moccuda.Backends.Moccuda_polygeist a64fx
              ~batch ~threads:t
          in
          let od =
            Moccuda.Resnet.throughput Moccuda.Backends.One_dnn a64fx ~batch
              ~threads:t
          in
          ratios := (moc /. od) :: !ratios;
          pr "%7.2f" (moc /. od))
        threads;
      pr "\n")
    batches;
  pr "\nRatio stats: geomean %.2fx  min %.2fx  max %.2fx  (paper: 2.7x / 1.2x / 4.5x)\n"
    (geomean !ratios)
    (List.fold_left Float.min infinity !ratios)
    (List.fold_left Float.max neg_infinity !ratios);
  pr "\nRight: geomean throughput across batch sizes (12 threads = 1 CMG)\n";
  List.iter
    (fun backend ->
      let g =
        geomean
          (List.map
             (fun batch ->
               Moccuda.Resnet.throughput backend a64fx ~batch ~threads:12)
             batches)
      in
      pr "%20s : %8.2f images/s\n" (Moccuda.Backends.name backend) g)
    Moccuda.Backends.all;
  let moc =
    geomean
      (List.map
         (fun batch ->
           Moccuda.Resnet.throughput Moccuda.Backends.Moccuda_polygeist a64fx
             ~batch ~threads:12)
         batches)
  in
  let native =
    geomean
      (List.map
         (fun batch ->
           Moccuda.Resnet.throughput Moccuda.Backends.Native a64fx ~batch
             ~threads:12)
         batches)
  in
  pr "\nMocCUDA+Polygeist over the native CPU backend: %.1fx  (paper abstract: 2.7x)\n"
    (moc /. native)

(* --- robustness: the degradation ladder over the whole suite --- *)

(* For each Rodinia benchmark and each injected-fault scenario: how far
   down the degradation ladder does the pass manager descend, and does
   the degraded program still compute the same answer as the
   conservative no-opt lowering? *)
let robust () =
  header
    "Robustness — degradation ladder under injected faults\n\
     (cell: deepest rung engaged; ! marks an output mismatch vs no-opt)";
  let scenarios =
    [ ("none", [])
    ; ("cpuify:raise", [ ("cpuify", Core.Fault.Raise) ])
    ; ( "cpuify:raise x2",
        [ ("cpuify", Core.Fault.Raise); ("cpuify", Core.Fault.Raise) ] )
    ; ("cse:corrupt", [ ("cse", Core.Fault.Corrupt) ])
    ; ("mem2reg:exhaust", [ ("mem2reg", Core.Fault.Exhaust) ])
    ; ("seeded(42)", Core.Fault.random_plan ~seed:42 (Core.Cpuify.stage_names ()))
    ]
  in
  let short = function
    | "full" -> "full"
    | "no-mincut" -> "no-mc"
    | "skip" -> "skip"
    | "no-opt-fallback" -> "no-opt"
    | s -> s
  in
  let checksum_of (m : Ir.Op.op) (b : Rodinia.Bench_def.t) : float =
    let w = b.mk_workload b.test_size in
    ignore
      (Interp.Eval.run ~team_size:3 m b.entry
         (Rodinia.Bench_def.args_of_workload w));
    Rodinia.Bench_def.checksum w
  in
  pr "\n%16s" "benchmark";
  List.iter (fun (n, _) -> pr " %15s" n) scenarios;
  pr "\n";
  let mismatches = ref 0 in
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      (* conservative baseline: what every degradation must still equal *)
      let baseline =
        let m = Cudafe.Codegen.compile b.cuda_src in
        Core.Cpuify.run ~use_mincut:false m;
        ignore (Core.Omp_lower.run m);
        checksum_of m b
      in
      pr "%16s" b.name;
      List.iter
        (fun (_, faults) ->
          let m = Cudafe.Codegen.compile b.cuda_src in
          let cell =
            match Core.Passmgr.run_pipeline ~faults m with
            | Ok report ->
              ignore (Core.Omp_lower.run m);
              let got = checksum_of m b in
              let close =
                let scale =
                  Float.max 1.0 (Float.max (Float.abs baseline) (Float.abs got))
                in
                Float.abs (baseline -. got) /. scale < 1e-4
              in
              if not close then incr mismatches;
              short (deepest_rung report) ^ if close then "" else "!"
            | Error _ -> "UNRECOVERABLE"
          in
          pr " %15s" cell)
        scenarios;
      pr "\n")
    Rodinia.Registry.all;
  pr "\nOutput mismatches vs the no-opt baseline: %d (expected: 0)\n"
    !mismatches

(* --- speedup: real wall-clock scaling, serial interpreter vs the
   multicore runtime --- *)

(* Unlike the figure benches (analytic machine model), this measures
   actual execution time of the lowered OpenMP module: the tree-walking
   GPU-semantics interpreter as the serial baseline vs the
   compile-to-closures runtime (Runtime.Exec) across domain counts.

   Workloads are sized honestly: each benchmark grows from its
   differential-test size toward the paper size until the serial
   interpreter needs at least [--min-serial-ms] of wall clock, so the
   timed region dominates launch overhead instead of being launch
   overhead.  Every parallel result is digested bit-for-bit against the
   serial interpreter at the same team size, and alongside time the
   harness records the runtime's own counters — in particular
   [frames_allocated] on a warm rep must be 0 (the zero-allocation
   launch contract).  Parallel efficiency is t1 / (d * td), i.e. the
   fraction of perfect scaling retained at d domains.  Results land in
   BENCH_4.json. *)

type domain_run =
  { dr_d : int
  ; dr_t : float (* best-of-reps wall clock, seconds *)
  ; dr_speedup : float (* t_serial / dr_t *)
  ; dr_eff : float (* t_1domain / (d * dr_t) *)
  ; dr_ok : bool (* checksum matches serial interp at team_size = d *)
  ; dr_stats : Runtime.Exec.stats (* counters of the last (warm) rep *)
  }

type bench_row =
  { br_name : string
  ; br_n : int
  ; br_serial : float
  ; br_result : (domain_run list * int * int, string) result
    (* runs, spawns at 4 domains with / without team reuse *)
  }

(* Grow the workload from [test_size] toward [paper_size] until the
   serial interpreter takes at least [min_serial_ms]; benchmarks whose
   sizes are both odd (stencils wanting a center point) grow as
   (n-1)*2+1 to stay odd.  A size the interpreter rejects backs off to
   the last size that ran. *)
let pick_size (b : Rodinia.Bench_def.t) (m : Ir.Op.op) ~min_serial_ms :
  int * float =
  let odd k = k land 1 = 1 in
  let grow n =
    if odd b.test_size && odd b.paper_size then ((n - 1) * 2) + 1 else n * 2
  in
  let serial_once n =
    let w = b.mk_workload n in
    let t0 = Unix.gettimeofday () in
    ignore (Interp.Eval.run m b.entry (Rodinia.Bench_def.args_of_workload w));
    Unix.gettimeofday () -. t0
  in
  let rec go n t =
    if t *. 1000.0 >= min_serial_ms || n >= b.paper_size then (n, t)
    else
      let n' = min (grow n) b.paper_size in
      if n' <= n then (n, t)
      else
        match serial_once n' with
        | t' -> go n' t'
        | exception _ -> (n, t)
  in
  match serial_once b.test_size with
  | t -> go b.test_size t
  | exception _ -> (b.test_size, 0.0)

let speedup ?(min_serial_ms = 80.0) ?(reps = 3)
    ?(domain_counts = [ 1; 2; 4; 8 ]) ?(out = Some "BENCH_4.json") () :
  bench_row list =
  header
    (Printf.sprintf
       "Scaling — serial interpreter vs multicore runtime (real wall-clock)\n\
        (workloads sized for >= %.0f ms serial; checksums verified\n\
        bit-for-bit against the serial interpreter at each team size)"
       min_serial_ms);
  let reps = max 2 reps (* the last rep must be warm for the stats proof *) in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      if t1 -. t0 < !best then best := t1 -. t0
    done;
    !best
  in
  pr "\n%16s %9s %10s" "benchmark" "n" "serial";
  List.iter (fun d -> pr "   %dd: x (eff)  " d) domain_counts;
  pr "spawns(reuse/fresh)\n";
  let rows = ref [] in
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = build_polygeist ~name:b.name b.cuda_src in
      let n, _ = pick_size b m ~min_serial_ms in
      let serial_checksum = ref nan in
      let t_serial =
        time_best (fun () ->
            let w = b.mk_workload n in
            ignore
              (Interp.Eval.run m b.entry
                 (Rodinia.Bench_def.args_of_workload w));
            serial_checksum := Interp.Mem.checksum w.Rodinia.Bench_def.buffers)
      in
      match Runtime.Exec.compile m b.entry with
      | exception Runtime.Exec.Unsupported why ->
        pr "%16s %9d %10.2e   (unsupported: %s)\n" b.name n t_serial why;
        rows :=
          { br_name = b.name; br_n = n; br_serial = t_serial
          ; br_result = Error why }
          :: !rows
      | compiled ->
        let t1 = ref nan in
        let runs =
          List.map
            (fun d ->
              (* ground truth at this team size: the serial interpreter
                 with team_size = d (the static partition depends on the
                 team size, so compare like with like) *)
              let wref = b.mk_workload n in
              ignore
                (Interp.Eval.run ~team_size:d m b.entry
                   (Rodinia.Bench_def.args_of_workload wref));
              let ref_ck =
                Interp.Mem.checksum wref.Rodinia.Bench_def.buffers
              in
              let ck = ref nan in
              let last_stats = ref None in
              let t_par =
                time_best (fun () ->
                    let w = b.mk_workload n in
                    let _, st =
                      Runtime.Exec.run ~domains:d compiled
                        (Rodinia.Bench_def.args_of_workload w)
                    in
                    last_stats := Some st;
                    ck := Interp.Mem.checksum w.Rodinia.Bench_def.buffers)
              in
              if d = 1 then t1 := t_par;
              { dr_d = d
              ; dr_t = t_par
              ; dr_speedup = t_serial /. t_par
              ; dr_eff = !t1 /. (float_of_int d *. t_par)
              ; dr_ok = !ck = ref_ck
              ; dr_stats = Option.get !last_stats
              })
            domain_counts
        in
        (* team-reuse ablation at 4 domains: fresh pool per launch *)
        let spawns_of ~team_reuse =
          let w = b.mk_workload n in
          let s0 = Runtime.Pool.total_spawns () in
          ignore
            (Runtime.Exec.run ~domains:4 ~team_reuse compiled
               (Rodinia.Bench_def.args_of_workload w));
          Runtime.Pool.total_spawns () - s0
        in
        let reuse_spawns = spawns_of ~team_reuse:true in
        let fresh_spawns = spawns_of ~team_reuse:false in
        pr "%16s %9d %10.2e" b.name n t_serial;
        List.iter
          (fun r ->
            pr " %6.1fx (%3.0f%%)%s" r.dr_speedup (100.0 *. r.dr_eff)
              (if r.dr_ok then " " else "!"))
          runs;
        pr "  %d/%d\n" reuse_spawns fresh_spawns;
        rows :=
          { br_name = b.name; br_n = n; br_serial = t_serial
          ; br_result = Ok (runs, reuse_spawns, fresh_spawns) }
          :: !rows)
    Rodinia.Registry.all;
  let rows = List.rev !rows in
  let supported =
    List.filter_map
      (fun r -> match r.br_result with Ok v -> Some v | Error _ -> None)
      rows
  in
  let at d =
    List.filter_map
      (fun (runs, _, _) -> List.find_opt (fun r -> r.dr_d = d) runs)
      supported
  in
  let mismatches =
    List.concat_map
      (fun r ->
        match r.br_result with
        | Ok (runs, _, _) ->
          List.filter_map
            (fun dr -> if dr.dr_ok then None else Some (r.br_name, dr.dr_d))
            runs
        | Error _ -> [])
      rows
  in
  let warm_frames =
    List.fold_left
      (fun acc (runs, _, _) ->
        List.fold_left
          (fun acc r -> acc + r.dr_stats.Runtime.Exec.frames_allocated)
          acc runs)
      0 supported
  in
  pr "\nChecksum mismatches vs the serial interpreter: %d (expected: 0)\n"
    (List.length mismatches);
  pr "Frames allocated on warm (best-timed) reps: %d (expected: 0)\n"
    warm_frames;
  pr "\n%28s" "geomean over benchmarks:";
  List.iter
    (fun d ->
      let rs = at d in
      pr "  %dd %.2fx (eff %2.0f%%)" d
        (geomean (List.map (fun r -> r.dr_speedup) rs))
        (100.0 *. geomean (List.map (fun r -> r.dr_eff) rs)))
    domain_counts;
  pr "\n";
  (match out with
   | None -> ()
   | Some path ->
     (* hand-rolled JSON: no JSON library in the container *)
     let buf = Buffer.create 4096 in
     let bpr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
     bpr "{\n  \"bench\": \"scaling\",\n  \"min_serial_ms\": %.1f,\n"
       min_serial_ms;
     bpr "  \"domain_counts\": [%s],\n"
       (String.concat ", " (List.map string_of_int domain_counts));
     bpr "  \"results\": [\n";
     List.iteri
       (fun i r ->
         bpr "    {\"name\": \"%s\", \"n\": %d, \"serial_s\": %.6e" r.br_name
           r.br_n r.br_serial;
         (match r.br_result with
          | Error why -> bpr ", \"supported\": false, \"why\": \"%s\"" why
          | Ok (runs, reuse_spawns, fresh_spawns) ->
            bpr ", \"supported\": true, \"runs\": [";
            List.iteri
              (fun j dr ->
                bpr
                  "%s{\"domains\": %d, \"parallel_s\": %.6e, \"speedup\": \
                   %.3f, \"efficiency\": %.3f, \"checksum_match\": %b, \
                   \"launches\": %d, \"barrier_phases\": %d, \
                   \"chunks_grabbed\": %d, \"frames_allocated_warm\": %d}"
                  (if j > 0 then ", " else "")
                  dr.dr_d dr.dr_t dr.dr_speedup dr.dr_eff dr.dr_ok
                  dr.dr_stats.Runtime.Exec.launches
                  dr.dr_stats.Runtime.Exec.barrier_phases
                  dr.dr_stats.Runtime.Exec.chunks_grabbed
                  dr.dr_stats.Runtime.Exec.frames_allocated)
              runs;
            bpr "], \"spawns_at_4_reuse\": %d, \"spawns_at_4_fresh\": %d"
              reuse_spawns fresh_spawns);
         bpr "}%s\n" (if i < List.length rows - 1 then "," else ""))
       rows;
     bpr "  ],\n";
     bpr "  \"summary\": {\"checksum_mismatches\": %d, \
          \"frames_allocated_warm\": %d,\n"
       (List.length mismatches) warm_frames;
     bpr "    \"geomean_speedup\": {%s},\n"
       (String.concat ", "
          (List.map
             (fun d ->
               Printf.sprintf "\"%d\": %.3f" d
                 (geomean (List.map (fun r -> r.dr_speedup) (at d))))
             domain_counts));
     bpr "    \"geomean_efficiency\": {%s},\n"
       (String.concat ", "
          (List.map
             (fun d ->
               Printf.sprintf "\"%d\": %.3f" d
                 (geomean (List.map (fun r -> r.dr_eff) (at d))))
             domain_counts));
     bpr "    \"positive_scaling_at_4\": %b}\n"
       (match (at 4, at 1) with
        | (_ :: _ as r4), (_ :: _ as r1) ->
          geomean (List.map (fun r -> r.dr_speedup) r4)
          > geomean (List.map (fun r -> r.dr_speedup) r1)
        | _ -> false);
     bpr "}\n";
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Buffer.contents buf));
     pr "Wrote %s\n" path);
  rows

(* CI tripwire: tiny workloads, 1 vs 4 domains, no file written.  Fails
   (exit 1) on any checksum mismatch, on a nonzero warm frame
   allocation, or if 4 domains is more than 2x slower than 1 domain in
   the geomean — the launch-overhead regression this PR exists to
   prevent.  This box has one core, so "not much slower" is the honest
   bound; on real multicore hardware the speedup harness is the
   interesting number. *)
let perf_smoke () =
  let rows =
    speedup ~min_serial_ms:3.0 ~reps:2 ~domain_counts:[ 1; 4 ] ~out:None ()
  in
  let supported =
    List.filter_map
      (fun r -> match r.br_result with Ok v -> Some v | Error _ -> None)
      rows
  in
  let bad_ck =
    List.exists
      (fun (runs, _, _) -> List.exists (fun r -> not r.dr_ok) runs)
      supported
  in
  let warm_frames =
    List.fold_left
      (fun acc (runs, _, _) ->
        List.fold_left
          (fun acc r -> acc + r.dr_stats.Runtime.Exec.frames_allocated)
          acc runs)
      0 supported
  in
  let ratio41 =
    geomean
      (List.filter_map
         (fun (runs, _, _) ->
           match
             ( List.find_opt (fun r -> r.dr_d = 4) runs,
               List.find_opt (fun r -> r.dr_d = 1) runs )
           with
           | Some r4, Some r1 -> Some (r4.dr_t /. r1.dr_t)
           | _ -> None)
         supported)
  in
  pr "\nperf-smoke: geomean t(4 domains) / t(1 domain) = %.2f (limit 2.00)\n"
    ratio41;
  let fail = ref false in
  if bad_ck then begin
    pr "perf-smoke FAIL: checksum mismatch vs the serial interpreter\n";
    fail := true
  end;
  if warm_frames > 0 then begin
    pr "perf-smoke FAIL: %d frames allocated on warm launches (want 0)\n"
      warm_frames;
    fail := true
  end;
  if not (ratio41 <= 2.0) then begin
    pr "perf-smoke FAIL: 4 domains more than 2x slower than 1 domain\n";
    fail := true
  end;
  if !fail then exit 1;
  pr "perf-smoke OK\n"

(* --- fuzz: differential-fuzzer throughput --- *)

(* How fast the differential oracle chews through generated kernels:
   every case runs the full rung ladder (each pipeline stage verified
   and interpreted, plus both executors), so cases/min is an honest
   compiler+interpreter+runtime throughput number.  On a healthy build
   the divergence count is 0. *)
let fuzz_bench ~seed ~cases () =
  header
    (Printf.sprintf
       "Fuzz — differential oracle throughput (%d cases from seed %d)" cases
       seed);
  let r = Fuzz.Fuzzer.run_campaign ~seed ~cases () in
  pr "\n%s" (Fuzz.Fuzzer.report_to_string r);
  if r.Fuzz.Fuzzer.findings <> [] then exit 1

(* Flags after "fuzz": --seed N (default 1), --cases N (default 200) *)
let fuzz_with_flags () =
  let seed = ref 1 in
  let cases = ref 200 in
  let i = ref 2 in
  let next name =
    incr i;
    if !i >= Array.length Sys.argv then begin
      prerr_endline ("missing value for " ^ name);
      exit 1
    end;
    Sys.argv.(!i)
  in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
     | "--seed" -> seed := int_of_string (next "--seed")
     | "--cases" -> cases := int_of_string (next "--cases")
     | other ->
       prerr_endline ("unknown fuzz flag: " ^ other);
       exit 1);
    incr i
  done;
  fuzz_bench ~seed:!seed ~cases:!cases ()

(* --- repair: auto-repair search throughput --- *)

(* The analysis-guided repair loop end to end: scan fixed seeds for
   sanitizer-dirty racy mutants, run the candidate search on each, and
   validate every accepted patch on the differential oracle.  The
   interesting numbers are search economy (candidates speculatively
   applied per accepted edit — 1.0 means the ranking put the right
   point first every time) and the median wall-clock of one search
   including oracle validation.  On a healthy build every mutant is
   repaired. *)
let repair_bench ~seed ~racy () =
  header
    (Printf.sprintf
       "Repair — analysis-guided barrier repair (%d racy mutants from seed \
        %d)"
       racy seed);
  let r = Fuzz.Fuzzer.run_repair_campaign ~seed ~racy () in
  pr "\n%s" (Fuzz.Fuzzer.repair_report_to_string r);
  let ok =
    List.filter
      (fun (f : Fuzz.Fuzzer.repair_finding) -> Result.is_ok f.presult)
      r.Fuzz.Fuzzer.rfindings
  in
  let tried =
    List.fold_left (fun a (f : Fuzz.Fuzzer.repair_finding) -> a + f.ptried) 0 ok
  in
  let edits =
    List.fold_left (fun a (f : Fuzz.Fuzzer.repair_finding) -> a + f.pedits) 0 ok
  in
  pr "\ncandidates tried: %d for %d accepted edit(s) (%.2f per edit)\n" tried
    edits
    (if edits = 0 then 0.0 else float_of_int tried /. float_of_int edits);
  if List.length ok < List.length r.Fuzz.Fuzzer.rfindings then exit 1

(* Flags after "repair": --seed N (default 1), --racy N (default 20) *)
let repair_with_flags () =
  let seed = ref 1 in
  let racy = ref 20 in
  let i = ref 2 in
  let next name =
    incr i;
    if !i >= Array.length Sys.argv then begin
      prerr_endline ("missing value for " ^ name);
      exit 1
    end;
    Sys.argv.(!i)
  in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
     | "--seed" -> seed := int_of_string (next "--seed")
     | "--racy" -> racy := int_of_string (next "--racy")
     | other ->
       prerr_endline ("unknown repair flag: " ^ other);
       exit 1);
    incr i
  done;
  repair_bench ~seed:!seed ~racy:!racy ()

(* --- bechamel micro-benchmarks of the compiler itself --- *)

let micro () =
  header "Compiler micro-benchmarks (real measured time, bechamel)";
  let open Bechamel in
  let backprop_src = Rodinia.Backprop.bench.Rodinia.Bench_def.cuda_src in
  let matmul_src = Rodinia.Registry.matmul.Rodinia.Bench_def.cuda_src in
  let tests =
    [ Test.make ~name:"frontend: parse+codegen backprop"
        (Staged.stage (fun () -> ignore (Cudafe.Codegen.compile backprop_src)))
    ; Test.make ~name:"pipeline: cpuify+omp backprop"
        (Staged.stage (fun () -> ignore (build_polygeist ~name:"backprop" backprop_src)))
    ; Test.make ~name:"pipeline: cpuify+omp matmul"
        (Staged.stage (fun () -> ignore (build_polygeist ~name:"matmul" matmul_src)))
    ; Test.make ~name:"mcuda: fission matmul"
        (Staged.stage (fun () -> ignore (Mcuda.compile matmul_src)))
    ; Test.make ~name:"interp: reduction 2x64 (GPU semantics)"
        (let m = Cudafe.Codegen.compile matmul_src in
         let w = Rodinia.Registry.matmul.Rodinia.Bench_def.mk_workload 16 in
         Staged.stage (fun () ->
             let w' =
               { w with
                 Rodinia.Bench_def.buffers =
                   Array.map
                     (fun b ->
                       Interp.Mem.of_float_array (Interp.Mem.float_contents b))
                     w.Rodinia.Bench_def.buffers
               }
             in
             ignore
               (Interp.Eval.run m "run"
                  (Rodinia.Bench_def.args_of_workload w'))))
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let estimates = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> pr "%-45s %12.1f ns/run\n" name t
          | _ -> pr "%-45s (no estimate)\n" name)
        estimates)
    tests

(* Flags of the scaling harness (everything after "speedup"):
   --min-serial-ms F   workload sizing target (default 80)
   --reps N            timing repetitions, best-of (default 3)
   --domains 1,2,4,8   comma-separated domain counts
   --out FILE          JSON output path (default BENCH_4.json) *)
let speedup_with_flags () =
  let min_serial_ms = ref 80.0 in
  let reps = ref 3 in
  let domain_counts = ref [ 1; 2; 4; 8 ] in
  let out = ref (Some "BENCH_4.json") in
  let i = ref 2 in
  let next name =
    incr i;
    if !i >= Array.length Sys.argv then begin
      prerr_endline ("missing value for " ^ name);
      exit 1
    end;
    Sys.argv.(!i)
  in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
     | "--min-serial-ms" -> min_serial_ms := float_of_string (next "--min-serial-ms")
     | "--reps" -> reps := int_of_string (next "--reps")
     | "--domains" ->
       domain_counts :=
         List.map int_of_string (String.split_on_char ',' (next "--domains"))
     | "--out" -> out := Some (next "--out")
     | other ->
       prerr_endline ("unknown speedup flag: " ^ other);
       exit 1);
    incr i
  done;
  if not (List.mem 1 !domain_counts) then begin
    prerr_endline "--domains must include 1 (the efficiency baseline)";
    exit 1
  end;
  ignore
    (speedup ~min_serial_ms:!min_serial_ms ~reps:!reps
       ~domain_counts:!domain_counts ~out:!out ())

(* --- compile-service throughput (BENCH_5.json) --- *)

(* Sustained jobs/sec, p50/p99 latency and cache hit rate of the
   in-process daemon core under a hot/cold job replay with a
   configurable percentage of injected serve:raise faults, plus an
   admission-control burst that must produce explicit Overloaded
   rejections (never unbounded queueing).  Cold = first submission of
   a cache key; warm = every later one (served from the
   content-addressed cache).  The headline check mirrors the service's
   reason to exist: warm latency must be at least 10x below cold. *)

let serve_sources =
  (* distinct scale constants = distinct sources = distinct cache keys *)
  List.init 6 (fun i ->
      Printf.sprintf
        {|__global__ void saxpy(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = %d.0f * x[i] + y[i];
}
void run(float* x, float* y, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
        (i + 2))

let percentile (xs : float array) (p : float) : float =
  if Array.length xs = 0 then 0.0
  else begin
    let xs = Array.copy xs in
    Array.sort compare xs;
    let idx =
      int_of_float (p /. 100.0 *. float_of_int (Array.length xs - 1))
    in
    xs.(min (Array.length xs - 1) idx)
  end

let serve_bench ?(jobs = 300) ?(fault_pct = 1) ?(queue_cap = 16)
    ?(out = Some "BENCH_5.json") () =
  header
    (Printf.sprintf
       "Compile service — sustained hot/cold replay, %d jobs, %d%% injected \
        serve:raise faults"
       jobs fault_pct);
  let crash_dir = Filename.temp_file "bench_serve" ".crash" in
  Sys.remove crash_dir;
  let t =
    Serve.Server.create
      { Serve.Server.queue_cap
      ; cache_dir = None
      ; executors = 1
      ; executor_deadline_ms = 0
      ; sup =
          { Serve.Supervisor.default_config with
            deadline_ms = 5000
          ; crash_dir = Some crash_dir
          ; backoff = { Serve.Backoff.default with base_ms = 1; cap_ms = 5 }
          }
      }
  in
  let nsrc = List.length serve_sources in
  let sources = Array.of_list serve_sources in
  let mk_job ?(faults = "") i =
    { Serve.Proto.source = sources.(i mod nsrc)
    ; entry = Some "run"
    ; sizes = [ 256 ]
    ; mode = "inner-serial"
    ; exec = "interp"
    ; domains = 2
    ; schedule = "static"
    ; faults
    }
  in
  let cold = ref [] and warm = ref [] and faulted = ref [] in
  let fault_every = if fault_pct <= 0 then max_int else 100 / fault_pct in
  let t0 = Unix.gettimeofday () in
  for i = 0 to jobs - 1 do
    let faults = if i > 0 && i mod fault_every = 0 then "serve:raise" else "" in
    let j0 = Unix.gettimeofday () in
    (match Serve.Server.run t (mk_job ~faults i) with
     | Serve.Proto.Done o ->
       let dt = Unix.gettimeofday () -. j0 in
       if o.Serve.Proto.exit_code <> 0 then
         Printf.printf "  WARNING: job %d exited %d\n" i
           o.Serve.Proto.exit_code;
       if faults <> "" then faulted := dt :: !faulted
       else if o.Serve.Proto.cached then warm := dt :: !warm
       else cold := dt :: !cold
     | Serve.Proto.Overloaded _ | Serve.Proto.Rejected _ ->
       Printf.printf "  WARNING: synchronous job %d rejected\n" i)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* admission-control burst: async submissions beyond the queue bound
     must be rejected explicitly, not queued into latency collapse *)
  let burst = (queue_cap * 3) + 4 in
  let tickets = ref [] in
  let rejected = ref 0 in
  for i = 0 to burst - 1 do
    match Serve.Server.submit t (mk_job i) with
    | `Ticket tk -> tickets := tk :: !tickets
    | `Overloaded _ -> incr rejected
    | `Draining -> ()
  done;
  List.iter (fun tk -> ignore (Serve.Server.await tk)) !tickets;
  let s = Serve.Server.agg_stats t in
  let cs = Serve.Cache.stats (Serve.Server.cache t) in
  Serve.Server.drain t;
  let cold_a = Array.of_list !cold and warm_a = Array.of_list !warm in
  let faulted_a = Array.of_list !faulted in
  let ms x = x *. 1000.0 in
  let cold_p50 = percentile cold_a 50.0 and cold_p99 = percentile cold_a 99.0 in
  let warm_p50 = percentile warm_a 50.0 and warm_p99 = percentile warm_a 99.0 in
  let hit_rate =
    float_of_int cs.Serve.Cache.hits
    /. float_of_int (max 1 (cs.Serve.Cache.hits + cs.Serve.Cache.misses))
  in
  let warm_speedup = cold_p50 /. Float.max warm_p50 1e-9 in
  Printf.printf
    "  %d jobs in %.2f s (%.1f jobs/sec sustained)\n\
    \  cold (%d):    p50 %8.3f ms   p99 %8.3f ms\n\
    \  warm (%d):    p50 %8.3f ms   p99 %8.3f ms   (%.0fx below cold p50)\n\
    \  faulted (%d): p50 %8.3f ms (one-shot fault, retry, recover)\n\
    \  cache: %d hits / %d misses (%.1f%% hit rate)\n\
    \  admission burst: %d submissions, %d explicit Overloaded rejections\n\
    \  fault wall: %d retries, %d crash bundles, 0 daemon deaths\n"
    jobs elapsed
    (float_of_int jobs /. elapsed)
    (Array.length cold_a) (ms cold_p50) (ms cold_p99) (Array.length warm_a)
    (ms warm_p50) (ms warm_p99) warm_speedup (Array.length faulted_a)
    (ms (percentile faulted_a 50.0))
    cs.Serve.Cache.hits cs.Serve.Cache.misses (100.0 *. hit_rate) burst
    !rejected s.Serve.Supervisor.retries s.Serve.Supervisor.bundles;
  if warm_speedup < 10.0 then
    Printf.printf
      "  WARNING: warm latency is only %.1fx below cold (want >= 10x)\n"
      warm_speedup;
  if !rejected = 0 then
    Printf.printf
      "  WARNING: the burst produced no Overloaded rejections (queue cap \
       %d, burst %d)\n"
      queue_cap burst;
  (match out with
   | None -> ()
   | Some path ->
     let buf = Buffer.create 2048 in
     let bpr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
     bpr "{\n";
     bpr "  \"bench\": \"serve\",\n";
     bpr "  \"jobs\": %d,\n" jobs;
     bpr "  \"fault_pct\": %d,\n" fault_pct;
     bpr "  \"queue_cap\": %d,\n" queue_cap;
     bpr "  \"elapsed_s\": %.6e,\n" elapsed;
     bpr "  \"jobs_per_sec\": %.3f,\n" (float_of_int jobs /. elapsed);
     bpr
       "  \"cold\": {\"count\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
       (Array.length cold_a) (ms cold_p50) (ms cold_p99);
     bpr
       "  \"warm\": {\"count\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
       (Array.length warm_a) (ms warm_p50) (ms warm_p99);
     bpr
       "  \"faulted\": {\"count\": %d, \"p50_ms\": %.4f},\n"
       (Array.length faulted_a)
       (ms (percentile faulted_a 50.0));
     bpr "  \"warm_speedup_vs_cold_p50\": %.2f,\n" warm_speedup;
     bpr "  \"warm_at_least_10x\": %b,\n" (warm_speedup >= 10.0);
     bpr "  \"cache\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f},\n"
       cs.Serve.Cache.hits cs.Serve.Cache.misses hit_rate;
     bpr
       "  \"admission\": {\"burst\": %d, \"overloaded_rejections\": %d},\n"
       burst !rejected;
     bpr
       "  \"fault_wall\": {\"retries\": %d, \"bundles\": %d, \
        \"pool_rebuilds\": %d, \"daemon_deaths\": 0}\n"
       s.Serve.Supervisor.retries s.Serve.Supervisor.bundles
       s.Serve.Supervisor.pool_rebuilds;
     bpr "}\n";
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Buffer.contents buf));
     Printf.printf "  wrote %s\n" path)

(* --- compile-service executor-fleet sweep (BENCH_7.json) --- *)

(* Throughput of the daemon core at 1/2/4 executor lanes under a burst
   that mixes warm cache hits with serve:hang STRAGGLERS.  A straggler
   burns a full watchdog deadline before it fails; with one executor
   those deadline burns serialize, with a fleet they overlap across
   lanes — so the sweep measures the one thing the fleet exists for:
   a slow job must not stall the lane-parallel service of fast ones.
   The headline check: 4 executors must clear the burst with at least
   2x the throughput of 1 executor.

   The job set uses enough distinct sources that source-hash affinity
   spreads the stragglers across lanes (same sources at every executor
   count, so the comparison is apples to apples). *)

let fleet_sources =
  List.init 8 (fun i ->
      Printf.sprintf
        {|__global__ void axpb(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = %d.0f * x[i] + %d.0f;
}
void run(float* x, float* y, int n) {
  axpb<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
        (i + 2) (i + 1))

let serve_fleet_bench ?(burst = 40) ?(hang_every = 5)
    ?(out = Some "BENCH_7.json") () =
  header
    (Printf.sprintf
       "Compile service — executor-fleet sweep, burst of %d jobs (1 in %d a \
        serve:hang straggler) at 1/2/4 executors"
       burst hang_every);
  let deadline_ms = 300 in
  let sources = Array.of_list fleet_sources in
  let nsrc = Array.length sources in
  let mk_job ?(faults = "") i =
    { Serve.Proto.source = sources.(i mod nsrc)
    ; entry = Some "run"
    ; sizes = [ 256 ]
    ; mode = "inner-serial"
    ; exec = "interp"
    ; domains = 2
    ; schedule = "static"
    ; faults
    }
  in
  let run_sweep executors =
    let t =
      Serve.Server.create
        { Serve.Server.queue_cap = burst + 8
        ; cache_dir = None
        ; executors
        ; executor_deadline_ms = 0 (* derived; far above one deadline burn *)
        ; sup =
            { Serve.Supervisor.default_config with
              deadline_ms
            ; crash_dir = None
            ; backoff =
                { Serve.Backoff.base_ms = 1
                ; cap_ms = 2
                ; max_retries = 0 (* a straggler burns exactly one deadline *)
                }
            }
        }
    in
    (* warm the cache so the burst's clean jobs are hits *)
    Array.iteri
      (fun i _ ->
        match Serve.Server.run t (mk_job i) with
        | Serve.Proto.Done o when o.Serve.Proto.exit_code = 0 -> ()
        | _ -> Printf.printf "  WARNING: warmup job %d failed\n" i)
      sources;
    let t0 = Unix.gettimeofday () in
    let tickets = ref [] and lost = ref 0 and hangs = ref 0 in
    for i = 0 to burst - 1 do
      let faults =
        if i mod hang_every = 0 then begin
          incr hangs;
          "serve:hang"
        end
        else ""
      in
      match Serve.Server.submit t (mk_job ~faults i) with
      | `Ticket tk -> tickets := (i, faults = "", Unix.gettimeofday (), tk) :: !tickets
      | `Overloaded _ | `Draining ->
        Printf.printf "  WARNING: burst job %d rejected (cap %d)\n" i
          (burst + 8)
    done;
    let warm_lat = ref [] in
    List.iter
      (fun (_i, clean, ts, tk) ->
        let o = Serve.Server.await tk in
        let dt = Unix.gettimeofday () -. ts in
        if clean then begin
          warm_lat := dt :: !warm_lat;
          if o.Serve.Proto.exit_code <> 0 then incr lost
        end)
      (List.rev !tickets);
    let elapsed = Unix.gettimeofday () -. t0 in
    let unanswered =
      List.length
        (List.filter
           (fun (_, _, _, tk) -> Serve.Server.peek tk = None)
           !tickets)
    in
    Serve.Server.drain t;
    let warm = Array.of_list !warm_lat in
    let jps = float_of_int burst /. elapsed in
    Printf.printf
      "  %d executor(s): %d jobs (%d stragglers) in %6.2f s = %6.1f jobs/s; \
       warm p50 %7.2f ms p99 %7.2f ms; %d clean failures, %d unanswered\n"
      executors burst !hangs elapsed jps
      (1000.0 *. percentile warm 50.0)
      (1000.0 *. percentile warm 99.0)
      !lost unanswered;
    (executors, elapsed, jps, percentile warm 50.0, percentile warm 99.0,
     !hangs, !lost, unanswered)
  in
  let sweep = List.map run_sweep [ 1; 2; 4 ] in
  let jps_of n =
    match List.find_opt (fun (e, _, _, _, _, _, _, _) -> e = n) sweep with
    | Some (_, _, jps, _, _, _, _, _) -> jps
    | None -> 0.0
  in
  let ratio = jps_of 4 /. Float.max (jps_of 1) 1e-9 in
  Printf.printf "  throughput 4 executors / 1 executor: %.2fx %s\n" ratio
    (if ratio >= 2.0 then "(>= 2x: the fleet pays for itself)"
     else "(WARNING: below the 2x bar)");
  (match out with
   | None -> ()
   | Some path ->
     let buf = Buffer.create 1024 in
     let bpr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
     bpr "{\n";
     bpr "  \"bench\": \"serve-fleet\",\n";
     bpr "  \"burst\": %d,\n" burst;
     bpr "  \"hang_every\": %d,\n" hang_every;
     bpr "  \"deadline_ms\": %d,\n" deadline_ms;
     bpr "  \"sweep\": [\n";
     List.iteri
       (fun i (e, elapsed, jps, p50, p99, hangs, lost, unanswered) ->
         bpr
           "    {\"executors\": %d, \"elapsed_s\": %.6e, \"jobs_per_sec\": \
            %.3f, \"warm_p50_ms\": %.4f, \"warm_p99_ms\": %.4f, \
            \"stragglers\": %d, \"clean_failures\": %d, \"unanswered\": %d}%s\n"
           e elapsed jps (1000.0 *. p50) (1000.0 *. p99) hangs lost unanswered
           (if i = List.length sweep - 1 then "" else ","))
       sweep;
     bpr "  ],\n";
     bpr "  \"throughput_ratio_4x_vs_1x\": %.3f,\n" ratio;
     bpr "  \"fleet_at_least_2x\": %b\n" (ratio >= 2.0);
     bpr "}\n";
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Buffer.contents buf));
     Printf.printf "  wrote %s\n" path)

(* --- moccuda: the kernel tier end to end (BENCH_6.json) --- *)

(* Real wall-clock of the compiled-kernel network: the miniature ResNet
   forward pass where every tensor op is a transpiled mini-CUDA kernel
   (frontend -> barrier lowering -> OpenMP -> the multicore engine),
   at 1/2/4 domains, cold (first pass compiles every kernel) vs warm
   (every launch a cache hit).  Functional ground truth is the
   Tensorlib reference forward pass: the loss must match BIT FOR BIT
   at every domain count.  A capped slice of the real ResNet-50 layer
   table then runs through the same tier with per-layer checksum
   parity.  The analytic Opcost prediction (A64FX model) is printed
   next to each measured time — the cost model and the measurement
   come from the same graph. *)
let moccuda_bench ?(reps = 3) ?(out = Some "BENCH_6.json") () =
  let open Tensorlib in
  header
    "MocCUDA kernel tier — compiled forward pass, real wall-clock\n\
     (every op a transpiled kernel; loss checked bitwise against the\n\
     Tensorlib reference at each domain count)";
  let batch = 2 and hw = 8 and channels = 8 in
  let m = Moccuda.Resnet.mini_model ~channels in
  let images = Tensor.rand 42 [| batch; 3; hw; hw |] in
  let targets = [| 3; 7 |] in
  let reference =
    Moccuda.Resnet.mini_forward Moccuda.Backends.Moccuda_expert m ~images
      ~targets
  in
  let images_b = Moccuda.Graph.buffer_of_tensor images in
  let targets_b = Moccuda.Graph.buffer_of_ints targets in
  let cm = Moccuda.Resnet.mini_compiled m ~batch ~hw in
  let bits = Int64.bits_of_float in
  pr "\nforward pass: batch %d, %dx%d images, %d channels\n" batch hw hw
    channels;
  pr "%8s %12s %12s %14s %10s %6s\n" "domains" "cold (s)" "warm (s)"
    "a64fx pred (s)" "recompile" "loss=";
  let rows =
    List.map
      (fun domains ->
        let km = Moccuda.Kmgr.create ~domains () in
        let ar = Moccuda.Arena.create () in
        let run () =
          Moccuda.Resnet.run_mini_compiled cm km ar ~images:images_b
            ~targets:targets_b
        in
        let t0 = Unix.gettimeofday () in
        let cold_loss = run () in
        let cold_s = Unix.gettimeofday () -. t0 in
        let compiles_after_cold = (Moccuda.Kmgr.stats km).Moccuda.Kmgr.compiles in
        let warm_s = ref infinity in
        let warm_loss = ref cold_loss in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          warm_loss := run ();
          let t = Unix.gettimeofday () -. t0 in
          if t < !warm_s then warm_s := t
        done;
        let s = Moccuda.Kmgr.stats km in
        let recompiles = s.Moccuda.Kmgr.compiles - compiles_after_cold in
        let loss_ok =
          Int64.equal (bits cold_loss) (bits reference)
          && Int64.equal (bits !warm_loss) (bits reference)
        in
        let predicted =
          Opcost.seconds a64fx ~threads:domains
            (Moccuda.Resnet.mini_cost cm)
        in
        pr "%8d %12.4f %12.4f %14.2e %10d %6s\n" domains cold_s !warm_s
          predicted recompiles
          (if loss_ok then "bit" else "DIFF");
        (domains, cold_s, !warm_s, predicted, recompiles, loss_ok,
         Moccuda.Kmgr.kernels km, s))
      [ 1; 2; 4 ]
  in
  let _, _, _, _, _, _, kernels4, _ = List.nth rows (List.length rows - 1) in
  pr "\nper-kernel totals at 4 domains (rung, launches, time):\n";
  List.iter
    (fun (k : Moccuda.Kmgr.kernel_info) ->
      pr "  %-10s %-14s %-8s %4d launches %9.4f s\n" k.Moccuda.Kmgr.kname
        (String.concat "x" (List.map string_of_int k.Moccuda.Kmgr.kshape))
        k.Moccuda.Kmgr.krung k.Moccuda.Kmgr.klaunches k.Moccuda.Kmgr.ksecs)
    kernels4;
  (* the real ResNet-50 table, capped so the engine finishes in bench
     time: geometry (kernel size, stride, channel ratios) is the
     layer's own *)
  let sweep_km = Moccuda.Kmgr.create ~domains:4 () in
  let sweep_ar = Moccuda.Arena.create () in
  let sweep_layers = List.filteri (fun i _ -> i < 6) Moccuda.Resnet.conv_layers in
  pr "\nResNet-50 layer sweep (first %d layers, hw<=8, channels<=16, 4 domains):\n"
    (List.length sweep_layers);
  let sweep =
    List.mapi
      (fun i l ->
        let r =
          Moccuda.Resnet.run_conv_layer ~hw_cap:8 ~channel_cap:16 sweep_km
            sweep_ar ~batch:1 l
        in
        let ok =
          Int64.equal
            (bits r.Moccuda.Resnet.lr_checksum)
            (bits r.Moccuda.Resnet.lr_ref_checksum)
        in
        let sh = r.Moccuda.Resnet.lr_shape in
        pr "  layer %2d: %3dc -> %3dk  %dx%d s%d  %8.4f s  checksum %s\n" i
          sh.Conv.c sh.Conv.k sh.Conv.r sh.Conv.s sh.Conv.p.Conv.stride
          r.Moccuda.Resnet.lr_secs
          (if ok then "bit-identical" else "MISMATCH");
        (i, r, ok))
      sweep_layers
  in
  let all_loss_ok = List.for_all (fun (_, _, _, _, _, ok, _, _) -> ok) rows in
  let no_recompiles =
    List.for_all (fun (_, _, _, _, rc, _, _, _) -> rc = 0) rows
  in
  let sweep_ok = List.for_all (fun (_, _, ok) -> ok) sweep in
  pr "\nloss bitwise at every domain count: %b\n" all_loss_ok;
  pr "warm recompiles: %s\n" (if no_recompiles then "0" else "NONZERO");
  pr "layer-sweep checksum parity: %b\n" sweep_ok;
  (match out with
   | None -> ()
   | Some path ->
     let buf = Buffer.create 4096 in
     let bpr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
     bpr "{\n  \"bench\": \"moccuda\",\n";
     bpr "  \"batch\": %d, \"hw\": %d, \"channels\": %d,\n" batch hw channels;
     bpr "  \"reference_loss\": %.17g,\n" reference;
     bpr "  \"forward\": [\n";
     List.iteri
       (fun i (d, cold_s, warm_s, predicted, rc, ok, kernels, stats) ->
         bpr
           "    {\"domains\": %d, \"cold_s\": %.6e, \"warm_s\": %.6e, \
            \"predicted_a64fx_s\": %.6e, \"warm_recompiles\": %d, \
            \"loss_bitwise\": %b,\n"
           d cold_s warm_s predicted rc ok;
         bpr
           "     \"cache\": {\"compiles\": %d, \"hits\": %d, \"misses\": \
            %d, \"degraded\": %d, \"interp_fallbacks\": %d, \"launches\": \
            %d},\n"
           stats.Moccuda.Kmgr.compiles stats.Moccuda.Kmgr.hits
           stats.Moccuda.Kmgr.misses stats.Moccuda.Kmgr.degraded
           stats.Moccuda.Kmgr.interp_fallbacks stats.Moccuda.Kmgr.launches;
         bpr "     \"ops\": [";
         List.iteri
           (fun j (k : Moccuda.Kmgr.kernel_info) ->
             bpr "%s{\"name\": \"%s\", \"shape\": \"%s\", \"rung\": \
                  \"%s\", \"launches\": %d, \"secs\": %.6e}"
               (if j > 0 then ", " else "")
               k.Moccuda.Kmgr.kname
               (String.concat "x"
                  (List.map string_of_int k.Moccuda.Kmgr.kshape))
               k.Moccuda.Kmgr.krung k.Moccuda.Kmgr.klaunches
               k.Moccuda.Kmgr.ksecs)
           kernels;
         bpr "]}%s\n" (if i < List.length rows - 1 then "," else ""))
       rows;
     bpr "  ],\n  \"layer_sweep\": [\n";
     List.iteri
       (fun i (idx, (r : Moccuda.Resnet.layer_run), ok) ->
         let sh = r.Moccuda.Resnet.lr_shape in
         bpr
           "    {\"layer\": %d, \"c\": %d, \"k\": %d, \"ksize\": %d, \
            \"stride\": %d, \"secs\": %.6e, \"checksum_match\": %b}%s\n"
           idx sh.Conv.c sh.Conv.k sh.Conv.r sh.Conv.p.Conv.stride
           r.Moccuda.Resnet.lr_secs ok
           (if i < List.length sweep - 1 then "," else ""))
       sweep;
     bpr "  ],\n";
     bpr
       "  \"summary\": {\"loss_bitwise_all_domains\": %b, \
        \"warm_recompiles_zero\": %b, \"layer_sweep_parity\": %b}\n"
       all_loss_ok no_recompiles sweep_ok;
     bpr "}\n";
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Buffer.contents buf));
     pr "Wrote %s\n" path);
  if not (all_loss_ok && no_recompiles && sweep_ok) then exit 1

(* Flags after "moccuda": --reps N (default 3), --out FILE *)
let moccuda_with_flags () =
  let reps = ref 3 in
  let out = ref (Some "BENCH_6.json") in
  let i = ref 2 in
  let next name =
    incr i;
    if !i >= Array.length Sys.argv then begin
      prerr_endline ("missing value for " ^ name);
      exit 1
    end;
    Sys.argv.(!i)
  in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
     | "--reps" -> reps := int_of_string (next "--reps")
     | "--out" -> out := Some (next "--out")
     | other ->
       prerr_endline ("unknown moccuda flag: " ^ other);
       exit 1);
    incr i
  done;
  moccuda_bench ~reps:!reps ~out:!out ()

(* Flags of the serve bench (everything after "serve"):
   --jobs N        replayed job count (default 300)
   --fault-pct N   percentage of jobs with an injected serve:raise
   --queue-cap N   admission bound for the Overloaded burst
   --burst N       fleet-sweep burst size (default 40)
   --no-fleet      skip the 1/2/4-executor sweep (BENCH_7.json)
   --out FILE      JSON output path of the replay (default BENCH_5.json) *)
let serve_with_flags () =
  let jobs = ref 300 in
  let fault_pct = ref 1 in
  let queue_cap = ref 16 in
  let burst = ref 40 in
  let fleet = ref true in
  let out = ref (Some "BENCH_5.json") in
  let i = ref 2 in
  let next name =
    incr i;
    if !i >= Array.length Sys.argv then begin
      prerr_endline ("missing value for " ^ name);
      exit 1
    end;
    Sys.argv.(!i)
  in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
     | "--jobs" -> jobs := int_of_string (next "--jobs")
     | "--fault-pct" -> fault_pct := int_of_string (next "--fault-pct")
     | "--queue-cap" -> queue_cap := int_of_string (next "--queue-cap")
     | "--burst" -> burst := int_of_string (next "--burst")
     | "--no-fleet" -> fleet := false
     | "--out" -> out := Some (next "--out")
     | other ->
       prerr_endline ("unknown serve flag: " ^ other);
       exit 1);
    incr i
  done;
  serve_bench ~jobs:!jobs ~fault_pct:!fault_pct ~queue_cap:!queue_cap
    ~out:!out ();
  if !fleet then serve_fleet_bench ~burst:!burst ()

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match which with
   | "fig12" -> fig12 ()
   | "fig13_ablate" -> fig13_ablate ()
   | "fig13_speedup" -> fig13_speedup ()
   | "fig14_scaling" -> fig14_scaling ()
   | "fig15_resnet" -> fig15_resnet ()
   | "robust" -> robust ()
   | "speedup" -> speedup_with_flags ()
   | "serve" -> serve_with_flags ()
   | "perf-smoke" -> perf_smoke ()
   | "moccuda" -> moccuda_with_flags ()
   | "fuzz" -> fuzz_with_flags ()
   | "repair" -> repair_with_flags ()
   | "micro" -> micro ()
   | "all" ->
     fig12 ();
     fig13_ablate ();
     fig13_speedup ();
     fig14_scaling ();
     fig15_resnet ();
     robust ();
     ignore (speedup ());
     micro ()
   | other ->
     prerr_endline ("unknown figure: " ^ other);
     exit 1);
  print_degradations ()
